#include "co/election.hpp"

#include <algorithm>
#include <memory>

#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "util/contracts.hpp"

namespace colex::co {

bool ElectionResult::valid_election() const {
  if (leader_count != 1) return false;
  for (const auto& n : nodes) {
    if (n.role == Role::undecided) return false;
  }
  return true;
}

std::uint64_t theorem4_lower_bound(std::uint64_t n, std::uint64_t k) {
  COLEX_EXPECTS(n >= 1 && k >= n);
  std::uint64_t s = 0;
  while ((n << (s + 1)) <= k) ++s;  // s = floor(log2(k / n))
  return n * s;
}

sim::Port physical_cw_port(const std::vector<bool>& port_flips,
                           sim::NodeId v) {
  const bool flipped = !port_flips.empty() && port_flips.at(v);
  return flipped ? sim::Port::p0 : sim::Port::p1;
}

namespace {

void finalize_roles(ElectionResult& result) {
  result.leader_count = 0;
  result.leader.reset();
  for (sim::NodeId v = 0; v < result.nodes.size(); ++v) {
    if (result.nodes[v].role == Role::leader) {
      ++result.leader_count;
      if (!result.leader) result.leader = v;
    }
  }
}

template <typename Alg>
ElectionResult run_oriented(const std::vector<std::uint64_t>& ids,
                            sim::Scheduler& scheduler,
                            const sim::RunOptions& opts) {
  COLEX_EXPECTS(!ids.empty());
  auto net = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<Alg>(ids[v]));
  }
  ElectionResult result;
  result.report = net.run(scheduler, opts);
  result.quiescent = result.report.quiescent;
  result.all_terminated = result.report.all_terminated;
  result.pulses = result.report.sent;
  const std::uint64_t id_max = *std::max_element(ids.begin(), ids.end());
  result.pulse_bound =
      id_max == 0 ? 0 : theorem1_pulses(ids.size(), id_max);
  result.nodes.reserve(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& alg = net.template automaton_as<Alg>(v);
    NodeOutcome o;
    o.id = alg.id();
    o.role = alg.role();
    o.rho_cw = alg.counters().rho_cw;
    o.sigma_cw = alg.counters().sigma_cw;
    o.rho_ccw = alg.counters().rho_ccw;
    o.sigma_ccw = alg.counters().sigma_ccw;
    result.nodes.push_back(o);
  }
  finalize_roles(result);
  return result;
}

}  // namespace

ElectionResult elect_oriented_stabilizing(const std::vector<std::uint64_t>& ids,
                                          sim::Scheduler& scheduler,
                                          const sim::RunOptions& opts) {
  return run_oriented<Alg1Stabilizing>(ids, scheduler, opts);
}

ElectionResult elect_oriented_terminating(const std::vector<std::uint64_t>& ids,
                                          sim::Scheduler& scheduler,
                                          const sim::RunOptions& opts) {
  return run_oriented<Alg2Terminating>(ids, scheduler, opts);
}

OrientationResult elect_and_orient(const std::vector<std::uint64_t>& ids,
                                   const std::vector<bool>& port_flips,
                                   const Alg3NonOriented::Options& options,
                                   sim::Scheduler& scheduler,
                                   const sim::RunOptions& opts) {
  COLEX_EXPECTS(!ids.empty());
  COLEX_EXPECTS(port_flips.empty() || port_flips.size() == ids.size());
  auto net = sim::PulseNetwork::ring(ids.size(), port_flips);
  util::SplitMix64 seeder(options.resample_seed.value_or(0));
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    Alg3NonOriented::Options node_options = options;
    if (options.resample_seed) node_options.resample_seed = seeder.next();
    net.set_automaton(
        v, std::make_unique<Alg3NonOriented>(ids[v], node_options));
  }

  OrientationResult result;
  result.report = net.run(scheduler, opts);
  result.quiescent = result.report.quiescent;
  result.all_terminated = result.report.all_terminated;
  result.pulses = result.report.sent;
  const std::uint64_t id_max = *std::max_element(ids.begin(), ids.end());
  result.pulse_bound = id_max == 0 ? 0 : prop15_pulses(ids.size(), id_max);
  result.nodes.reserve(ids.size());
  result.cw_ports.reserve(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& alg = net.automaton_as<Alg3NonOriented>(v);
    NodeOutcome o;
    o.id = alg.id();
    o.role = alg.role();
    o.rho_p0 = alg.rho(sim::Port::p0);
    o.rho_p1 = alg.rho(sim::Port::p1);
    result.nodes.push_back(o);
    result.cw_ports.push_back(alg.cw_port());
  }
  finalize_roles(result);

  // Consistency: every node's declared CW port must point the same physical
  // way around the ring.
  bool all_cw = true, all_ccw = true;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    if (result.cw_ports[v] == physical_cw_port(port_flips, v)) {
      all_ccw = false;
    } else {
      all_cw = false;
    }
  }
  result.orientation_consistent = all_cw || all_ccw;

  // Proposition 15 defines clockwise as the direction of a pulse sent from
  // the max-ID node's Port1.
  const auto max_it = std::max_element(ids.begin(), ids.end());
  const auto ell = static_cast<sim::NodeId>(max_it - ids.begin());
  const bool ell_port1_is_physical_cw =
      physical_cw_port(port_flips, ell) == sim::Port::p1;
  result.orientation_matches_leader_port1 =
      result.orientation_consistent && (ell_port1_is_physical_cw == all_cw);
  return result;
}

AnonymousResult anonymous_election(std::size_t n,
                                   const std::vector<bool>& port_flips,
                                   double c, std::uint64_t seed,
                                   sim::Scheduler& scheduler,
                                   const sim::RunOptions& opts) {
  AnonymousResult result;
  result.sampled = sample_ids(n, c, seed);
  result.sampled_unique_max = unique_max(result.sampled);
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  for (const auto& s : result.sampled) ids.push_back(s.id);
  Alg3NonOriented::Options options;
  options.scheme = IdScheme::improved;
  result.election =
      elect_and_orient(ids, port_flips, options, scheduler, opts);
  return result;
}

}  // namespace colex::co
