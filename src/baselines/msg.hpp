// Content-carrying messages for the classical baselines (paper §1.2).
//
// The baselines run on the *same* simulator as the content-oblivious
// algorithms, just with a payload whose content survives the channel. This
// makes message-count comparisons apples-to-apples: one Msg on a channel
// corresponds to one pulse in the fully defective model, and `bit_size()`
// accounts for the information a fully reliable channel would have to carry.
#pragma once

#include <cstdint>

#include "sim/network.hpp"

namespace colex::baselines {

struct Msg {
  enum class Kind : std::uint8_t {
    candidate,  ///< circulating id / temp-id (LeLann, CR, Peterson, Franklin)
    probe,      ///< HS outbound probe with ttl
    reply,      ///< HS inbound reply
    announce,   ///< leader announcement, terminates receivers
  };

  Kind kind = Kind::candidate;
  std::uint64_t value = 0;  ///< id, temp id, or leader id
  std::uint32_t hops = 0;   ///< ttl (HS) or hop count (Itai-Rodeh)
  std::uint32_t phase = 0;  ///< phase / round number
  bool flag = false;        ///< Itai-Rodeh uniqueness bit

  /// Bits a reliable channel must carry for this message: 2 kind bits, the
  /// occupied value bits, hop and phase fields when nonzero, and the flag.
  std::uint64_t bit_size() const {
    auto width = [](std::uint64_t v) -> std::uint64_t {
      std::uint64_t bits = 1;
      while (v > 1) {
        v >>= 1;
        ++bits;
      }
      return bits;
    };
    std::uint64_t total = 2 + 1;  // kind + flag
    total += width(value);
    if (hops != 0) total += width(hops);
    if (phase != 0) total += width(phase);
    return total;
  }
};

using MsgNetwork = sim::Network<Msg>;
using MsgContext = sim::Context<Msg>;
using MsgAutomaton = sim::Automaton<Msg>;
using MsgRunOptions = sim::BasicRunOptions<Msg>;

}  // namespace colex::baselines
