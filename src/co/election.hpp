// High-level entry points for the paper's algorithms: build the ring, run it
// against a chosen adversarial scheduler, and extract structured results.
// This is the primary public API of the library.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "co/alg3.hpp"
#include "co/roles.hpp"
#include "co/sampling.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace colex::co {

/// Per-node snapshot after a run.
struct NodeOutcome {
  std::uint64_t id = 0;
  Role role = Role::undecided;
  std::uint64_t rho_cw = 0, sigma_cw = 0;    ///< oriented algorithms
  std::uint64_t rho_ccw = 0, sigma_ccw = 0;  ///< oriented algorithms
  std::uint64_t rho_p0 = 0, rho_p1 = 0;      ///< non-oriented algorithm
};

struct ElectionResult {
  bool quiescent = false;
  bool all_terminated = false;
  std::uint64_t pulses = 0;  ///< total pulses sent, network ground truth
  /// The paper's pulse bound for this run's actual inputs: Theorem 1/2's
  /// n(2*IDmax+1) for the oriented algorithms, Proposition 15's
  /// n(4*IDmax-1) for the non-oriented one. 0 when no bound applies
  /// (IDmax == 0).
  std::uint64_t pulse_bound = 0;
  std::optional<sim::NodeId> leader;
  std::size_t leader_count = 0;
  std::vector<NodeOutcome> nodes;
  sim::RunReport report;

  /// True iff exactly one node is Leader and all others Non-Leader.
  bool valid_election() const;

  /// Slack against the paper's bound, `pulse_bound - pulses`: >= 0 means
  /// the run respected the bound, negative quantifies the violation.
  /// Meaningless (0) when no bound applies.
  std::int64_t pulse_margin() const {
    return pulse_bound == 0
               ? 0
               : static_cast<std::int64_t>(pulse_bound) -
                     static_cast<std::int64_t>(pulses);
  }

  /// True iff a bound applies and the run's pulse count respects it.
  bool within_pulse_bound() const {
    return pulse_bound != 0 && pulses <= pulse_bound;
  }
};

struct OrientationResult : ElectionResult {
  /// Each node's declared CW port (the port it believes leads clockwise).
  std::vector<sim::Port> cw_ports;
  /// True iff all declared CW ports point the same way around the ring.
  bool orientation_consistent = false;
  /// True iff the agreed CW direction is the direction of a pulse sent from
  /// the max-ID node's Port1, which is how Proposition 15 defines clockwise.
  bool orientation_matches_leader_port1 = false;
};

struct AnonymousResult {
  std::vector<SampledId> sampled;
  OrientationResult election;
  /// The Lemma 18 success event; failure of this event is the only way the
  /// election can end without a unique leader.
  bool sampled_unique_max = false;
};

/// Exact message-complexity formulas from the paper.
constexpr std::uint64_t theorem1_pulses(std::uint64_t n,
                                        std::uint64_t id_max) {
  return n * (2 * id_max + 1);  // Theorems 1 and 2
}
constexpr std::uint64_t prop15_pulses(std::uint64_t n, std::uint64_t id_max) {
  return n * (4 * id_max - 1);
}
/// Theorem 4 lower bound: n * floor(log2(k / n)) pulses when k >= n IDs are
/// assignable.
std::uint64_t theorem4_lower_bound(std::uint64_t n, std::uint64_t k);

/// The physical clockwise port of node v in a ring built with `port_flips`
/// (ground truth the nodes themselves cannot see in the non-oriented case).
sim::Port physical_cw_port(const std::vector<bool>& port_flips,
                           sim::NodeId v);

/// Runs Algorithm 1 (stabilizing) on an oriented ring with the given IDs.
/// Duplicate IDs are allowed (Lemma 16); each max-ID holder ends Leader.
ElectionResult elect_oriented_stabilizing(const std::vector<std::uint64_t>& ids,
                                          sim::Scheduler& scheduler,
                                          const sim::RunOptions& opts = {});

/// Runs Algorithm 2 (quiescently terminating) on an oriented ring with
/// unique IDs. Message complexity is exactly theorem1_pulses(n, IDmax).
ElectionResult elect_oriented_terminating(const std::vector<std::uint64_t>& ids,
                                          sim::Scheduler& scheduler,
                                          const sim::RunOptions& opts = {});

/// Runs Algorithm 3 on a (possibly) non-oriented ring: `port_flips[v]`
/// scrambles node v's ports; empty means oriented. Elects a leader and
/// orients the ring; quiescently stabilizes without terminating.
OrientationResult elect_and_orient(const std::vector<std::uint64_t>& ids,
                                   const std::vector<bool>& port_flips,
                                   const Alg3NonOriented::Options& options,
                                   sim::Scheduler& scheduler,
                                   const sim::RunOptions& opts = {});

/// Theorem 3 end-to-end: every node samples an ID with Algorithm 4
/// (parameter c, per-node randomness derived from `seed`), then the ring
/// runs Algorithm 3 with the improved scheme. Succeeds with high
/// probability; `sampled_unique_max` reports the Lemma 18 event.
AnonymousResult anonymous_election(std::size_t n,
                                   const std::vector<bool>& port_flips,
                                   double c, std::uint64_t seed,
                                   sim::Scheduler& scheduler,
                                   const sim::RunOptions& opts = {});

}  // namespace colex::co
