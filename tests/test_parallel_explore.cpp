// Determinism of the parallel explorer (sim/parallel.hpp): stats and
// aggregated leaf outcomes must be a pure function of the configuration,
// independent of the worker count — 1, 2, and 8 workers bit-identical.
// ci.sh runs this test under TSan, which checks the other half of the
// contract: no data races while the subtrees run concurrently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "co/alg2.hpp"
#include "co/election.hpp"
#include "obs/metrics.hpp"
#include "sim/explore.hpp"
#include "sim/network.hpp"
#include "sim/parallel.hpp"

namespace colex::co {
namespace {

using Leaves = std::vector<std::string>;

std::function<sim::PulseNetwork()> alg2_ring(
    const std::vector<std::uint64_t>& ids) {
  return [ids] {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<Alg2Terminating>(ids[v]));
    }
    return net;
  };
}

std::string leaf_signature(sim::PulseNetwork& net) {
  std::ostringstream os;
  os << net.total_sent();
  for (sim::NodeId v = 0; v < net.size(); ++v) {
    os << '|' << to_string(net.automaton_as<Alg2Terminating>(v).role());
  }
  return os.str();
}

// NOTE: gtest assertions are not thread-safe, so the on_leaf callback only
// appends to its own Acc; all assertions happen on the main thread.
struct ParallelRun {
  sim::ExploreStats stats;
  Leaves leaves;
};

ParallelRun run_parallel(const std::function<sim::PulseNetwork()>& build,
                         std::uint64_t budget, std::size_t workers,
                         std::size_t min_subtrees) {
  ParallelRun run;
  sim::ParallelExploreOptions options;
  options.budget = budget;
  options.workers = workers;
  options.min_subtrees = min_subtrees;
  run.stats = sim::parallel_explore_all_schedules<Leaves>(
      build,
      [](Leaves& acc, sim::PulseNetwork& net) {
        acc.push_back(leaf_signature(net));
      },
      [](Leaves& into, const Leaves& from) {
        into.insert(into.end(), from.begin(), from.end());
      },
      run.leaves, options);
  return run;
}

TEST(ParallelExplore, WorkerCountDoesNotChangeTheResult) {
  const auto build = alg2_ring({2, 3, 1});
  const auto reference = run_parallel(build, 4'000'000, 1, 16);
  EXPECT_TRUE(reference.stats.exhaustive());
  EXPECT_GT(reference.stats.leaves, 1u);
  for (const std::size_t workers : {2u, 8u}) {
    const auto run = run_parallel(build, 4'000'000, workers, 16);
    EXPECT_EQ(run.stats, reference.stats) << workers << " workers";
    EXPECT_EQ(run.leaves, reference.leaves) << workers << " workers";
  }
}

TEST(ParallelExplore, TruncatedRunsAreStillWorkerCountDeterministic) {
  // Budget far below the tree size: the per-subtree quota split must make
  // even the truncation pattern independent of the worker count.
  const auto build = alg2_ring({2, 3, 1});
  const auto reference = run_parallel(build, 2'000, 1, 16);
  EXPECT_GT(reference.stats.truncated, 0u);
  for (const std::size_t workers : {2u, 8u}) {
    const auto run = run_parallel(build, 2'000, workers, 16);
    EXPECT_EQ(run.stats, reference.stats) << workers << " workers";
    EXPECT_EQ(run.leaves, reference.leaves) << workers << " workers";
  }
}

TEST(ParallelExplore, MatchesTheSequentialEngineLeafForLeaf) {
  // Leaf *order* differs (BFS prefix + per-subtree DFS vs pure DFS), but an
  // exhaustive run must visit exactly the same set of terminal states.
  const auto build = alg2_ring({1, 2});
  Leaves sequential;
  const auto seq_stats = sim::explore_all_schedules(
      build,
      [&sequential](sim::PulseNetwork& net) {
        sequential.push_back(leaf_signature(net));
      },
      2'000'000);
  ASSERT_TRUE(seq_stats.exhaustive());

  auto parallel = run_parallel(build, 2'000'000, 8, 16);
  ASSERT_TRUE(parallel.stats.exhaustive());
  EXPECT_EQ(parallel.stats.leaves, seq_stats.leaves);
  EXPECT_EQ(parallel.stats.max_depth, seq_stats.max_depth);

  std::sort(sequential.begin(), sequential.end());
  std::sort(parallel.leaves.begin(), parallel.leaves.end());
  EXPECT_EQ(parallel.leaves, sequential);
}

TEST(ParallelExplore, SmallTreeFitsEntirelyIntoTheFrontierExpansion) {
  // n = 1 has a single chain of forced deliveries: the BFS expansion never
  // reaches min_subtrees and must handle the tree draining on its own.
  const auto build = alg2_ring({3});
  const auto run = run_parallel(build, 100'000, 8, 64);
  EXPECT_TRUE(run.stats.exhaustive());
  EXPECT_EQ(run.stats.leaves, 1u);
  ASSERT_EQ(run.leaves.size(), 1u);
}

TEST(ParallelExplore, TelemetryCountsAreWorkerCountDeterministic) {
  const auto build = alg2_ring({2, 3, 1});
  sim::ExploreTelemetry reference;
  std::vector<sim::WorkerStats> ref_workers;
  {
    sim::ParallelExploreOptions options;
    options.budget = 4'000'000;
    options.workers = 1;
    options.min_subtrees = 16;
    options.telemetry = &reference;
    options.worker_stats = &ref_workers;
    Leaves leaves;
    const auto stats = sim::parallel_explore_all_schedules<Leaves>(
        build,
        [](Leaves& acc, sim::PulseNetwork& net) {
          acc.push_back(leaf_signature(net));
        },
        [](Leaves& into, const Leaves& from) {
          into.insert(into.end(), from.begin(), from.end());
        },
        leaves, options);
    ASSERT_TRUE(stats.exhaustive());
    EXPECT_GT(reference.visits, 0u);
    EXPECT_GT(reference.clones, 0u);
    EXPECT_GT(reference.seconds, 0.0);
    EXPECT_GT(reference.frontier_subtrees, 0u);
    // Every frontier subtree becomes exactly one pool task.
    std::uint64_t tasks = 0;
    for (const auto& w : ref_workers) tasks += w.tasks;
    EXPECT_EQ(tasks, reference.frontier_subtrees);
  }
  for (const std::size_t workers : {2u, 8u}) {
    sim::ExploreTelemetry telemetry;
    sim::ParallelExploreOptions options;
    options.budget = 4'000'000;
    options.workers = workers;
    options.min_subtrees = 16;
    options.telemetry = &telemetry;
    Leaves leaves;
    (void)sim::parallel_explore_all_schedules<Leaves>(
        build,
        [](Leaves& acc, sim::PulseNetwork& net) {
          acc.push_back(leaf_signature(net));
        },
        [](Leaves& into, const Leaves& from) {
          into.insert(into.end(), from.begin(), from.end());
        },
        leaves, options);
    // Wall time varies; the structural counts must not.
    EXPECT_EQ(telemetry.visits, reference.visits) << workers << " workers";
    EXPECT_EQ(telemetry.clones, reference.clones) << workers << " workers";
    EXPECT_EQ(telemetry.frontier_subtrees, reference.frontier_subtrees)
        << workers << " workers";
  }
}

// The metrics layer's concurrency contract, exercised under TSan by ci.sh:
// one Registry per subtree, written only by the worker that owns it, merged
// on the main thread after the join.
TEST(ParallelExplore, PerSubtreeRegistriesMergeDeterministically) {
  const auto build = alg2_ring({2, 3, 1});
  auto run_with = [&build](std::size_t workers) {
    obs::Registry merged;
    sim::ParallelExploreOptions options;
    options.budget = 4'000'000;
    options.workers = workers;
    options.min_subtrees = 16;
    const auto stats = sim::parallel_explore_all_schedules<obs::Registry>(
        build,
        [](obs::Registry& acc, sim::PulseNetwork& net) {
          acc.counter("leaves").inc();
          acc.gauge("max_pulses")
              .track_max(static_cast<double>(net.total_sent()));
          acc.histogram("pulses", {10.0, 20.0, 40.0})
              .record(static_cast<double>(net.total_sent()));
        },
        [](obs::Registry& into, const obs::Registry& from) {
          into.merge(from);
        },
        merged, options);
    EXPECT_TRUE(stats.exhaustive());
    EXPECT_EQ(merged.counter("leaves").value(), stats.leaves);
    return merged.to_json();
  };
  const std::string reference = run_with(1);
  EXPECT_EQ(run_with(2), reference);
  EXPECT_EQ(run_with(8), reference);
}

TEST(ParallelForInstrumented, CoversEveryIndexAndAccountsEveryTask) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    std::vector<int> hits(1000, 0);
    const auto stats = sim::parallel_for_instrumented(
        hits.size(), workers,
        [&hits](std::size_t, std::size_t task) { ++hits[task]; });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }))
        << workers << " workers";
    EXPECT_EQ(stats.size(), std::min(workers, hits.size()));
    std::uint64_t tasks = 0;
    for (const auto& w : stats) tasks += w.tasks;
    EXPECT_EQ(tasks, hits.size()) << workers << " workers";
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t workers : {1u, 2u, 8u}) {
    std::vector<int> hits(1000, 0);
    sim::parallel_for(hits.size(), workers,
                      [&hits](std::size_t i) { ++hits[i]; });
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }))
        << workers << " workers";
  }
}

}  // namespace
}  // namespace colex::co
