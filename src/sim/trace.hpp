// Execution tracing: records every send and delivery of a run as a
// structured event stream, and audits the stream against the model's
// conservation laws (every delivery is preceded by a matching send on the
// same channel; per-channel FIFO order; no channel ever over-delivers).
// The audit is deliberately independent of the Network's own counters, so
// it cross-checks the simulator itself.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace colex::sim {

struct TraceEvent {
  enum class Kind {
    send,
    deliver,
    // Injected faults are first-class events (sim/faults.hpp): a trace of a
    // faulty run is self-contained, and the audit can tell recorded
    // tampering apart from silent (unrecorded) tampering.
    fault_drop,       ///< a payload was deleted from a channel
    fault_duplicate,  ///< the head payload of a channel was doubled
    fault_spurious,   ///< a payload nobody sent was inserted
    fault_crash,      ///< a node crash-stopped
    fault_recover,    ///< a node rebooted into a fresh automaton
    fault_corrupt,    ///< node/channel state was adversarially overwritten
  };
  Kind kind = Kind::send;
  /// sender (send / channel faults) or receiver (deliver) or the faulted
  /// node (crash / recover / corrupt).
  NodeId node = 0;
  Port port = Port::p0;
  Direction dir = Direction::cw;  ///< physical direction of travel
  std::uint64_t index = 0;        ///< position in the event stream

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

constexpr const char* to_string(TraceEvent::Kind k) {
  switch (k) {
    case TraceEvent::Kind::send: return "send";
    case TraceEvent::Kind::deliver: return "deliver";
    case TraceEvent::Kind::fault_drop: return "fault-drop";
    case TraceEvent::Kind::fault_duplicate: return "fault-duplicate";
    case TraceEvent::Kind::fault_spurious: return "fault-spurious";
    case TraceEvent::Kind::fault_crash: return "fault-crash";
    case TraceEvent::Kind::fault_recover: return "fault-recover";
    case TraceEvent::Kind::fault_corrupt: return "fault-corrupt";
  }
  return "?";
}

/// Streams one event without materializing a std::string — the fast path
/// for exporting large traces (obs/export.hpp writes through this).
inline std::ostream& operator<<(std::ostream& os, const TraceEvent& e) {
  os << "#" << e.index << " " << to_string(e.kind) << " node=" << e.node
     << " port=" << sim::index(e.port) << " dir=" << to_string(e.dir);
  return os;
}

inline std::string to_string(const TraceEvent& e) {
  // Plain string appends instead of an ostringstream: no stream state, no
  // per-event stringbuf allocation — one reserve covers the typical event.
  std::string out;
  out.reserve(48);
  out += '#';
  out += std::to_string(e.index);
  out += ' ';
  out += to_string(e.kind);
  out += " node=";
  out += std::to_string(e.node);
  out += " port=";
  out += std::to_string(sim::index(e.port));
  out += " dir=";
  out += to_string(e.dir);
  return out;
}

/// Hooks into a run's options and collects the event stream.
///
///   TraceRecorder trace;
///   sim::RunOptions opts;
///   trace.attach(net, opts);         // chains any hooks already set
///   net.run(scheduler, opts);
///   trace.audit();                   // empty string == clean
template <typename P>
class BasicTraceRecorder {
 public:
  /// Wires this recorder into `net` and `opts`. Previously installed
  /// on_deliver hooks (and the network's send observer) are preserved and
  /// chained.
  void attach(Network<P>& net, BasicRunOptions<P>& opts) {
    auto previous_deliver = opts.on_deliver;
    opts.on_deliver = [this, previous_deliver](NodeId v, Port p,
                                               Direction d) {
      events_.push_back(TraceEvent{TraceEvent::Kind::deliver, v, p, d,
                                   static_cast<std::uint64_t>(
                                       events_.size())});
      if (previous_deliver) previous_deliver(v, p, d);
    };
    net.set_send_observer([this](NodeId v, Port p, Direction d) {
      events_.push_back(TraceEvent{TraceEvent::Kind::send, v, p, d,
                                   static_cast<std::uint64_t>(
                                       events_.size())});
    });
  }

  /// Appends a fault event to the stream. Called by sim::FaultInjector via
  /// its fault observer; `node`/`port` are the channel's *sending* endpoint
  /// for channel faults, the faulted node itself for lifecycle faults.
  void record_fault(TraceEvent::Kind kind, NodeId node, Port port,
                    Direction dir) {
    events_.push_back(TraceEvent{kind, node, port, dir,
                                 static_cast<std::uint64_t>(events_.size())});
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  std::uint64_t count(TraceEvent::Kind kind) const {
    std::uint64_t n = 0;
    for (const auto& e : events_) {
      if (e.kind == kind) ++n;
    }
    return n;
  }

  std::uint64_t sends() const { return count(TraceEvent::Kind::send); }

  std::uint64_t deliveries() const {
    return count(TraceEvent::Kind::deliver);
  }

  /// Audits the stream against the model: at no point may a channel
  /// (identified by sender node+port) have delivered more pulses than were
  /// sent on it. Recorded fault events are accounted for (a spurious or
  /// duplicated payload raises the channel balance, a drop lowers it), so a
  /// faithfully recorded faulty run audits clean while *silent* tampering
  /// still trips the check. Returns an empty string when clean, else a
  /// diagnostic. `wiring(recv_node, recv_port)` must map a delivery
  /// endpoint back to the sending endpoint; for the standard ring use
  /// `ring_wiring(net)`.
  template <typename Wiring>
  std::string audit(Wiring&& wiring) const {
    // Flat per-channel balances, indexed node*2+port (channels are dense in
    // node IDs); this runs once per trace event, so no tree lookups here.
    std::vector<std::int64_t> balance;
    auto slot = [&balance](NodeId node, Port port) -> std::int64_t& {
      const std::size_t i =
          node * 2 + static_cast<std::size_t>(sim::index(port));
      if (i >= balance.size()) balance.resize(i + 1, 0);
      return balance[i];
    };
    for (const auto& e : events_) {
      switch (e.kind) {
        case TraceEvent::Kind::send:
        case TraceEvent::Kind::fault_spurious:
        case TraceEvent::Kind::fault_duplicate:
          ++slot(e.node, e.port);
          break;
        case TraceEvent::Kind::fault_drop: {
          auto& b = slot(e.node, e.port);
          if (b <= 0) {
            return "fault-drop on empty channel from node " +
                   std::to_string(e.node) + " port " +
                   std::to_string(sim::index(e.port)) + " (event " +
                   std::to_string(e.index) + ")";
          }
          --b;
          break;
        }
        case TraceEvent::Kind::deliver: {
          const auto from = wiring(e.node, e.port);
          auto& b = slot(from.first, from.second);
          if (b <= 0) {
            return "channel from node " + std::to_string(from.first) +
                   " port " + std::to_string(sim::index(from.second)) +
                   " delivered more than it sent (event " +
                   std::to_string(e.index) + ")";
          }
          --b;
          break;
        }
        case TraceEvent::Kind::fault_crash:
        case TraceEvent::Kind::fault_recover:
        case TraceEvent::Kind::fault_corrupt:
          break;  // lifecycle/state faults do not move payloads on channels
      }
    }
    return {};
  }

 private:
  std::vector<TraceEvent> events_;
};

using TraceRecorder = BasicTraceRecorder<Pulse>;

/// Wiring function for the standard ring builder: maps a delivery endpoint
/// (receiver node+port) to the sender endpoint on the same edge.
inline auto ring_wiring(std::size_t n, const std::vector<bool>& flips = {}) {
  return [n, flips](NodeId v, Port p) -> std::pair<NodeId, Port> {
    auto flipped = [&flips](NodeId u) {
      return !flips.empty() && flips[u];
    };
    // In the builder's layout, node v's "toward v+1" attachment is Port1
    // unless flipped; receiving there means the sender is v+1 on its
    // "toward v" attachment, and vice versa.
    const Port toward_next = flipped(v) ? Port::p0 : Port::p1;
    if (p == toward_next) {
      const NodeId sender = (v + 1) % n;
      return {sender, flipped(sender) ? Port::p1 : Port::p0};
    }
    const NodeId sender = (v + n - 1) % n;
    return {sender, flipped(sender) ? Port::p0 : Port::p1};
  };
}

}  // namespace colex::sim
