// E7 — Corollary 5: any asynchronous ring algorithm runs on a fully
// defective oriented ring with no pre-existing leader. Measures the
// end-to-end pulse budget of [ elect (Theorem 1) ; token-bus survey ;
// application ] for two applications: gather-all-inputs and a simulated
// classical Chang-Roberts election.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "colib/apps.hpp"
#include "colib/composed.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

int main() {
  using namespace colex;
  bench::banner(
      "E7  Corollary 5: universal computation after election "
      "(bench_e7_composition)",
      "an elected leader serves as the root of [8]'s universal "
      "content-oblivious scheme; composition works because Algorithm 2 "
      "terminates quiescently with the leader last (paper Section 1.1)");
  bench::WallTimer total;
  bench::JsonReport report("E7", "Corollary 5 universal computation after election");

  util::Table table({"n", "IDmax", "app", "election pulses", "bus pulses",
                     "total", "election exact", "app correct",
                     "quiescent term."});
  bool all_ok = true;

  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto ids = util::shuffled(util::dense_ids(n), 11 * n + 1);
    std::uint64_t id_max = 0;
    for (const auto id : ids) id_max = std::max(id_max, id);

    // Application 1: gather all inputs (inputs = ring index + 1).
    {
      sim::PulseNetwork net;
      sim::RandomScheduler sched(n);
      const auto result = colib::run_composed_with_network(
          ids,
          [](sim::NodeId v) {
            return std::make_unique<colib::GatherAllApp>(v + 1);
          },
          sched, {}, net);
      bool app_ok = result.all_terminated &&
                    result.ring_size_learned == n;
      for (sim::NodeId v = 0; v < n && app_ok; ++v) {
        const auto& app = dynamic_cast<const colib::GatherAllApp&>(
            net.automaton_as<colib::ComposedNode>(v).bus()->app());
        app_ok = app.complete() && app.sum() == n * (n + 1) / 2 &&
                 app.max_value() == n;
      }
      const bool exact =
          result.election_pulses == co::theorem1_pulses(n, id_max);
      all_ok = all_ok && app_ok && exact && result.quiescent;
      table.add_row({util::Table::num(static_cast<std::uint64_t>(n)),
                     util::Table::num(id_max), "gather-all",
                     util::Table::num(result.election_pulses),
                     util::Table::num(result.bus_pulses),
                     util::Table::num(result.total_pulses),
                     exact ? "yes" : "NO", app_ok ? "yes" : "NO",
                     result.all_terminated && result.quiescent ? "yes"
                                                               : "NO"});
    }

    // Application 2: simulate content-carrying Chang-Roberts over pulses.
    {
      sim::PulseNetwork net;
      sim::RandomScheduler sched(n + 77);
      const auto result = colib::run_composed_with_network(
          ids,
          [&ids](sim::NodeId v) {
            return std::make_unique<colib::SimulatorApp>(
                std::make_unique<colib::ChangRobertsSimNode>(ids[v]));
          },
          sched, {}, net);
      std::size_t sim_leaders = 0;
      bool app_ok = result.all_terminated;
      for (sim::NodeId v = 0; v < n && app_ok; ++v) {
        const auto& app = dynamic_cast<const colib::SimulatorApp&>(
            net.automaton_as<colib::ComposedNode>(v).bus()->app());
        const auto& cr =
            dynamic_cast<const colib::ChangRobertsSimNode&>(app.node());
        app_ok = cr.leader().has_value() && *cr.leader() == id_max;
        if (cr.is_leader()) ++sim_leaders;
      }
      app_ok = app_ok && sim_leaders == 1;
      all_ok = all_ok && app_ok;
      table.add_row({util::Table::num(static_cast<std::uint64_t>(n)),
                     util::Table::num(id_max), "sim-chang-roberts",
                     util::Table::num(result.election_pulses),
                     util::Table::num(result.bus_pulses),
                     util::Table::num(result.total_pulses),
                     result.election_pulses ==
                             co::theorem1_pulses(n, id_max)
                         ? "yes"
                         : "NO",
                     app_ok ? "yes" : "NO",
                     result.all_terminated && result.quiescent ? "yes"
                                                               : "NO"});
    }
  }
  table.print(std::cout);
  report.root().set("all_ok", all_ok);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "election + universal simulation compose cleanly; every "
                 "bus node learned n; applications computed correct global "
                 "results over pulses alone");
  return all_ok ? 0 : 1;
}
