// Le Lann's algorithm (1977): every node's ID circulates the whole ring;
// each node collects all n IDs and independently picks the maximum. Exactly
// n^2 messages, no announcement needed, and termination is quiescent: by
// per-channel FIFO, a node's own ID returns only after every other ID has
// passed it.
#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/run_ring.hpp"
#include "util/contracts.hpp"

namespace colex::baselines {
namespace {

class LeLannNode final : public BaselineNode {
 public:
  explicit LeLannNode(std::uint64_t id) : id_(id) {}

  std::unique_ptr<MsgAutomaton> clone() const override {
    return std::make_unique<LeLannNode>(*this);
  }

  void start(MsgContext& ctx) override {
    Msg m;
    m.kind = Msg::Kind::candidate;
    m.value = id_;
    emit(ctx, kCw, m);
  }

  void react(MsgContext& ctx) override {
    while (auto m = ctx.recv(sim::Port::p0)) {
      COLEX_ASSERT(m->kind == Msg::Kind::candidate);
      if (m->value == id_) {
        // Own ID back: all IDs seen; decide and stop.
        std::uint64_t best = id_;
        for (const std::uint64_t other : seen_) best = std::max(best, other);
        leader_id_ = best;
        is_leader_ = best == id_;
        finish();
        return;
      }
      seen_.push_back(m->value);
      emit(ctx, kCw, *m);
    }
  }

 private:
  std::uint64_t id_;
  std::vector<std::uint64_t> seen_;
};

}  // namespace

BaselineResult lelann(const std::vector<std::uint64_t>& ids,
                      sim::Scheduler& scheduler, const MsgRunOptions& opts) {
  COLEX_EXPECTS(!ids.empty());
  return detail::run_ring(
      ids.size(),
      [&ids](sim::NodeId v) { return std::make_unique<LeLannNode>(ids[v]); },
      scheduler, opts);
}

}  // namespace colex::baselines
