file(REMOVE_RECURSE
  "CMakeFiles/test_exhaustive_schedules.dir/test_exhaustive_schedules.cpp.o"
  "CMakeFiles/test_exhaustive_schedules.dir/test_exhaustive_schedules.cpp.o.d"
  "test_exhaustive_schedules"
  "test_exhaustive_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exhaustive_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
