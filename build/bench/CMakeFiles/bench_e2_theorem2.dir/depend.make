# Empty dependencies file for bench_e2_theorem2.
# This may be replaced when dependencies are built.
