// Per-ring supervision for the soak harness: run one election attempt under
// its churn plan, classify the ending via sim::FaultOutcome, and drive the
// abandon → rebuild → re-elect retry loop until the election completes or
// the attempt budget runs out.
//
// The service-level contract enforced here, per election:
//
//  * Unique-leader safety — a completed election has exactly one Leader,
//    and it is the max-ID node. A CLEAN attempt (trivial fault plan) that
//    settles any other way is a genuine algorithm bug and classifies as
//    safety_violated, which is fatal: no retry can unsee it.
//  * Theorem 1 pulse bound — every completed election's pulse count is
//    checked against n(2·IDmax+1). A faulty attempt may legitimately exceed
//    it (a single duplicate breaks Algorithm 2's exact budget), so a
//    bound-exceeding settle is demoted to `stalled` and retried; on a clean
//    attempt the same excess is a safety violation. A completed election
//    therefore always passed the bound check.
//
// Retries respawn through ChurnEngine::spec(election, attempt, ...): fresh
// ring, exponentially decayed churn, doubled event budget, and a provably
// clean plan from `clean_after_attempts` on — so any policy whose attempt
// budget reaches the clean rung guarantees termination of the loop with
// either recovered_correct or (on a real bug) safety_violated.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/phase.hpp"
#include "sim/faults.hpp"
#include "svc/churn.hpp"

namespace colex::svc {

/// Execution substrate for soak attempts. Fault injection lives on the
/// simulator, so the non-sim backends take over exactly the attempts whose
/// churn plan is provably trivial(): with `coro` selected, clean attempts
/// (including every rung from clean_after_attempts on) run as real
/// coroutines on the work-stealing executor; with `socket` they run as
/// real TCP rings on loopback (one thread per node plus a quiescence
/// coordinator, src/net). Faulty attempts always go through
/// sim::FaultyNetwork. The service-level contract is unchanged — both
/// paths check the same unique-max-leader and Theorem 1 bound predicates
/// against conserved pulse counters.
enum class SoakBackend { sim, coro, socket };

const char* to_string(SoakBackend backend);
bool backend_from_string(const std::string& s, SoakBackend& out);

struct SupervisorPolicy {
  /// Total attempts per election: the first try plus up to
  /// max_attempts - 1 retries.
  unsigned max_attempts = 4;
  /// Attempts >= this index run with a trivial fault plan (the last rung of
  /// the backoff ladder). Must be < max_attempts for the self-healing
  /// guarantee to hold.
  unsigned clean_after_attempts = 2;
  /// Substrate for clean attempts (faulty attempts always run on sim).
  SoakBackend backend = SoakBackend::sim;
};

/// One classified attempt on one RingSpec.
struct AttemptResult {
  sim::FaultOutcome outcome = sim::FaultOutcome::recovered_correct;
  std::string diagnosis;
  std::uint64_t pulses = 0;
  std::uint64_t pulse_bound = 0;
  bool within_bound = false;   ///< pulses <= pulse_bound
  bool unique_leader = false;  ///< exactly one Leader role
  bool leader_is_max = false;  ///< and it holds the max ID
  bool on_coro = false;        ///< ran on the coroutine executor
  bool on_socket = false;      ///< ran on the real-socket backend
  /// Pulses attributed to the algorithm phase the sender was in
  /// (obs/phase.hpp); fabric pulses no node sent (injections/duplicates)
  /// land in the adversary bucket. On a clean attempt the array sums to
  /// `pulses` exactly; under loss-y churn it can exceed `pulses` by the
  /// dropped count (a dropped pulse was sent — and phase-attributed — but
  /// the fabric's conservation counter takes it back).
  std::array<std::uint64_t, obs::kPhaseCount> phase_pulses{};
  sim::FaultTallies tallies;
  sim::RunReport report;
};

/// Runs one attempt of `spec` to completion (or event-budget exhaustion).
/// On the sim backend (and for any non-trivial fault plan) the attempt runs
/// under a RandomScheduler seeded from the spec — a pure function of the
/// spec. On the coro and socket backends a clean attempt runs on the
/// coroutine executor / a real loopback TCP ring, where outcomes are
/// schedule-independent (exact pulse count, unique leader) but wall-clock
/// stalls are possible, so a watchdog timeout classifies as `stalled`
/// WITHOUT the clean-attempt escalation: a loaded machine is not an
/// algorithm bug, and the retry ladder absorbs it.
/// Clean-attempt escalation (stalled → safety_violated) and the pulse-bound
/// demotion described above are already applied to `outcome`.
AttemptResult run_attempt(const RingSpec& spec,
                          SoakBackend backend = SoakBackend::sim);

/// Final, supervised outcome of one election.
struct ElectionReport {
  sim::FaultOutcome final_outcome = sim::FaultOutcome::recovered_correct;
  std::string diagnosis;       ///< of the final attempt
  unsigned attempts = 0;       ///< attempts actually run (>= 1)
  bool completed = false;      ///< final outcome is recovered_correct
  bool abandoned = false;      ///< attempt budget exhausted without success
  std::uint64_t pulses = 0;            ///< of the final attempt
  std::uint64_t pulse_bound = 0;       ///< of the final attempt's ring
  std::uint64_t faults_applied = 0;    ///< across all attempts
  std::uint64_t events_consumed = 0;   ///< deliveries across all attempts
  std::uint64_t coro_attempts = 0;     ///< attempts run on the coro backend
  std::uint64_t socket_attempts = 0;   ///< attempts run on the socket backend
  /// Per-phase pulse attribution of the final attempt (same convention as
  /// AttemptResult::phase_pulses: sums to `pulses`).
  std::array<std::uint64_t, obs::kPhaseCount> phase_pulses{};
};

/// Supervises election number `election` of the engine's slot: attempt →
/// classify → retry with churn backoff, stopping on success, on a safety
/// violation, or after policy.max_attempts attempts (abandoned).
ElectionReport run_supervised(const ChurnEngine& churn, std::uint64_t election,
                              const SupervisorPolicy& policy);

}  // namespace colex::svc
