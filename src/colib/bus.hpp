// A root-coordinated, content-oblivious broadcast bus on oriented rings —
// the ring-specialized substrate of Censor-Hillel, Cohen, Gelles & Sela's
// universal content-oblivious computation ("[8]", Distributed Computing
// 2023), which the paper composes with in §1.1 / Corollary 5.
//
// Model recap: channels carry only pulses. Given a unique root (the elected
// leader) and an orientation, arbitrary data can move through the ring as
// follows.
//
//  * Serialization. At any moment at most one pulse is in flight in the
//    entire ring. Under that invariant a pulse's direction is one bit of
//    information: the emitter sends it clockwise (bit 0) or counterclockwise
//    (bit 1); every other node forwards it in the same direction; after a
//    full circle the emitter absorbs it. Every node therefore observes the
//    same global bit sequence, at a cost of exactly n pulses per bit.
//
//  * Survey. Before any framing is possible, nodes must learn the ring size
//    n and their clockwise offset from the root. The root hands a survey
//    token clockwise: a single CW pulse absorbed by its recipient. Each new
//    holder emits one full-circle CCW pulse (its "census circle"), waits for
//    it to return, then hands the token onward. A node's offset is one plus
//    the number of circles it saw before holding; when the token returns to
//    the root, the root emits one full-circle CW pulse (the "marker"), which
//    tells every node the survey is over and that n = circles seen + 1.
//    Cost: n handoffs + n(n-1) circle pulses + n marker pulses = n^2 + n.
//
//  * Frames. After the marker, the bit stream is parsed identically by all
//    nodes as a sequence of frames from the current token holder:
//        0                          PASS   token moves one hop clockwise
//        1 0                        HALT   bus shuts down (root only)
//        1 1 1^L 0 b_1..b_L         DATA   broadcast payload b to everyone
//    After PASS, the old holder (who absorbed the pass bit) sends one
//    private clockwise "go" pulse to the new holder; the new holder begins
//    acting only upon receiving it. This keeps the one-pulse-in-flight
//    invariant: a freshly passed token holder can otherwise emit a CCW bit
//    that overtakes the still-circulating pass bit. After DATA the sender
//    keeps the token. After HALT every node terminates — quiescently,
//    because the halt bit is the last pulse ever in flight.
//
// Applications drive the bus through the BusApp interface below, strictly
// turn-based: whenever this node holds the token, on_token must choose
// exactly one action (data / pass / halt).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "colib/bits.hpp"
#include "colib/framing.hpp"
#include "sim/network.hpp"

namespace colex::colib {

class BusNode;

/// Handed to BusApp::on_token; the app must call exactly one action.
class BusCtl {
 public:
  /// Broadcast `payload` to every node (including self); keep the token.
  void send_frame(Bits payload);
  /// Hand the token to the clockwise neighbor.
  void pass();
  /// Shut the bus down; permitted only at the root.
  void halt();

 private:
  friend class BusNode;
  enum class Action { none, frame, pass, halt };
  explicit BusCtl(bool is_root) : is_root_(is_root) {}
  bool is_root_;
  Action action_ = Action::none;
  Bits payload_;
};

/// The application protocol running on top of the bus.
class BusApp {
 public:
  virtual ~BusApp() = default;

  /// The survey finished: the bus is operational. Every node learns the
  /// ring size and its clockwise offset from the root (root offset = 0).
  virtual void on_ready(std::size_t my_offset, std::size_t ring_size,
                        bool is_root) = 0;

  /// A DATA frame from the node at clockwise offset `from` (broadcast
  /// semantics: delivered at every node, the sender included).
  virtual void on_frame(std::size_t from, const Bits& payload) = 0;

  /// This node holds the token and must choose exactly one action on `ctl`.
  virtual void on_token(BusCtl& ctl) = 0;

  /// The bus was shut down by HALT (final callback).
  virtual void on_halt() {}

  /// Deep copy of the app's full state, for the fork-based schedule
  /// explorer (BusNode::clone() clones its app along with the bus state).
  virtual std::unique_ptr<BusApp> clone() const = 0;
};

/// Tuning/ablation knobs for the bus.
struct BusOptions {
  /// ABLATION ONLY — disables the private "go" pulse after PASS, letting
  /// the new holder emit as soon as it decodes the pass bit. This violates
  /// the one-pulse-in-flight invariant: a CCW bit emitted by the new holder
  /// can overtake the still-circulating pass bit and desynchronize the
  /// decoders. bench_e11_ablation demonstrates the resulting corruption;
  /// never enable it otherwise.
  bool unsafe_skip_go = false;
};

/// The per-node bus automaton. Run it directly (with `root` designating the
/// coordinator) or behind co::Alg2Terminating via colib::ComposedNode.
class BusNode final : public sim::PulseAutomaton {
 public:
  BusNode(std::unique_ptr<BusApp> app, bool is_root,
          BusOptions options = {});

  void start(sim::PulseContext& ctx) override;
  void react(sim::PulseContext& ctx) override;
  bool terminated() const override { return phase_ == Phase::done; }
  std::unique_ptr<sim::PulseAutomaton> clone() const override;

  /// As clone(), but typed — ComposedNode forks its bus layer through this.
  std::unique_ptr<BusNode> clone_bus() const;

  /// Begin operating (used by ComposedNode at the phase switch; `start`
  /// simply calls this).
  void begin(sim::PulseContext& ctx);

  BusApp& app() { return *app_; }
  const BusApp& app() const { return *app_; }
  std::size_t ring_size() const { return n_; }
  std::size_t my_offset() const { return my_offset_; }
  bool halted() const { return phase_ == Phase::done; }
  std::uint64_t pulses_sent() const { return pulses_sent_; }

 private:
  /// Deep copy for clone()/clone_bus(): every value member is copied and
  /// the app is cloned (no state may be shared between the forks).
  BusNode(const BusNode& other);

  enum class Phase {
    idle,              // before begin()
    waiting_handoff,   // non-root, survey token not yet held
    holding_circle,    // survey token held, census circle in flight
    after_held,        // survey participation done, waiting for marker
    root_surveying,    // root, waiting for the token to come back
    root_marker,       // root, marker circle in flight
    stream,            // frame phase
    done,
  };

  // -- survey ----------------------------------------------------------
  void handle_survey(sim::PulseContext& ctx, sim::Port port);
  void enter_stream(sim::PulseContext& ctx);

  // -- stream ----------------------------------------------------------
  void handle_stream(sim::PulseContext& ctx, sim::Port port);
  void feed_decoder(sim::PulseContext& ctx, bool bit);
  void on_pass_decoded(sim::PulseContext& ctx);
  void run_token_action(sim::PulseContext& ctx);
  void emit_next_bit(sim::PulseContext& ctx);
  void send_pulse(sim::PulseContext& ctx, sim::Port p);

  std::unique_ptr<BusApp> app_;
  bool is_root_;
  BusOptions options_;
  Phase phase_ = Phase::idle;
  std::uint64_t pulses_sent_ = 0;

  // Survey state.
  std::size_t circles_seen_ = 0;
  std::size_t my_offset_ = 0;
  std::size_t n_ = 0;

  // Stream state.
  std::size_t holder_ = 0;       // clockwise offset of the token holder
  bool awaiting_go_ = false;     // we are the new holder, go pulse pending
  bool emitting_ = false;        // our own bits are circling
  Bits emission_;                // bits still to emit (front first)
  std::size_t emit_index_ = 0;
  bool send_go_after_emission_ = false;  // we emitted PASS

  // Frame decoder (shared bit stream; identical at every node).
  FrameDecoder decoder_;
};

}  // namespace colex::colib
