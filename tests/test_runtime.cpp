// Tests for the real-thread runtime: the blocking pseudocode transcriptions
// must reproduce the discrete simulator's results exactly — same leader,
// same roles, same total pulse counts — under genuine OS-level asynchrony.
#include <gtest/gtest.h>

#include "co/election.hpp"
#include "helpers.hpp"
#include "runtime/blocking_algs.hpp"

namespace colex::rt {
namespace {

TEST(ThreadRing, WiringMatchesSimulator) {
  // A pulse sent from node 0's Port1 must arrive at node 1's Port0.
  ThreadRing ring(3);
  auto io0 = ring.io(0);
  auto io1 = ring.io(1);
  io0.send(sim::Port::p1);
  EXPECT_TRUE(io1.recv(sim::Port::p0));
  EXPECT_FALSE(io1.recv(sim::Port::p0));
  EXPECT_FALSE(io1.recv(sim::Port::p1));
  EXPECT_EQ(ring.total_sent(), 1u);
  EXPECT_EQ(ring.total_consumed(), 1u);
}

TEST(ThreadRing, SelfLoopSingleNode) {
  ThreadRing ring(1);
  auto io = ring.io(0);
  io.send(sim::Port::p1);
  EXPECT_TRUE(io.recv(sim::Port::p0));
  io.send(sim::Port::p0);
  EXPECT_TRUE(io.recv(sim::Port::p1));
}

TEST(ThreadRing, FlippedWiring) {
  ThreadRing ring(3, {false, true, false});
  auto io0 = ring.io(0);
  auto io1 = ring.io(1);
  io0.send(sim::Port::p1);
  EXPECT_TRUE(io1.recv(sim::Port::p1));  // node 1's labels are swapped
}

TEST(Alg2Threads, MatchesTheorem1Exactly) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1, 7};
  const auto result = run_on_threads(ids, {}, ThreadAlg::alg2);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, co::theorem1_pulses(ids.size(), 11));
  EXPECT_EQ(result.leader_count, 1u);
  ASSERT_TRUE(result.leader.has_value());
  EXPECT_EQ(*result.leader, 1u);
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& out = result.outcomes[v];
    EXPECT_TRUE(out.terminated) << v;
    EXPECT_FALSE(out.stopped) << v;  // Algorithm 2 terminates on its own
    EXPECT_EQ(out.counters.rho_cw, 11u) << v;
    EXPECT_EQ(out.counters.rho_ccw, 12u) << v;
  }
}

TEST(Alg2Threads, RepeatedRunsAreAllExact) {
  // Thread scheduling differs run to run; the outcome must not.
  const std::vector<std::uint64_t> ids{4, 9, 2, 6, 1};
  for (int rep = 0; rep < 10; ++rep) {
    const auto result = run_on_threads(ids, {}, ThreadAlg::alg2);
    ASSERT_TRUE(result.completed) << rep;
    EXPECT_EQ(result.pulses, co::theorem1_pulses(5, 9)) << rep;
    EXPECT_EQ(result.leader_count, 1u) << rep;
    EXPECT_EQ(*result.leader, 1u) << rep;
  }
}

TEST(Alg2Threads, SingleNode) {
  const auto result = run_on_threads({5}, {}, ThreadAlg::alg2);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, 11u);
  EXPECT_EQ(result.leader_count, 1u);
}

TEST(Alg1Threads, StabilizesAndHarnessDetectsQuiescence) {
  const std::vector<std::uint64_t> ids{5, 9, 2, 7, 1};
  const auto result = run_on_threads(ids, {}, ThreadAlg::alg1);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, 5u * 9u);  // Corollary 13
  EXPECT_EQ(result.leader_count, 1u);
  EXPECT_EQ(*result.leader, 1u);
  for (const auto& out : result.outcomes) {
    EXPECT_TRUE(out.stopped);  // ended by the quiescence monitor
    EXPECT_FALSE(out.terminated);
    EXPECT_EQ(out.counters.rho_cw, 9u);
    EXPECT_EQ(out.counters.sigma_cw, 9u);
  }
}

TEST(Alg3Threads, ElectsAndOrientsOnScrambledRing) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9};
  const std::vector<bool> flips{true, false, true, true};
  const auto result =
      run_on_threads(ids, flips, ThreadAlg::alg3_improved);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, co::theorem1_pulses(4, 11));
  EXPECT_EQ(result.leader_count, 1u);
  EXPECT_EQ(*result.leader, 1u);
  // Declared CW ports must be consistent: all equal to the physical CW port
  // or all equal to the physical CCW port.
  bool all_cw = true, all_ccw = true;
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    if (result.outcomes[v].cw_port == co::physical_cw_port(flips, v)) {
      all_ccw = false;
    } else {
      all_cw = false;
    }
  }
  EXPECT_TRUE(all_cw || all_ccw);
}

TEST(Alg3Threads, DoubledSchemeCount) {
  const std::vector<std::uint64_t> ids{3, 5, 2};
  const auto result = run_on_threads(ids, {}, ThreadAlg::alg3_doubled);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, co::prop15_pulses(3, 5));
  EXPECT_EQ(result.leader_count, 1u);
}

TEST(Threads, AgreesWithSimulatorAcrossConfigurations) {
  // Cross-validation: the two execution models must produce identical
  // outputs and pulse totals for identical inputs.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto ids = test::sparse_ids(2 + seed % 5, 30, seed);
    sim::RandomScheduler sched(seed);
    const auto simulated = co::elect_oriented_terminating(ids, sched);
    const auto threaded = run_on_threads(ids, {}, ThreadAlg::alg2);
    ASSERT_TRUE(simulated.valid_election());
    ASSERT_TRUE(threaded.completed);
    EXPECT_EQ(threaded.pulses, simulated.pulses) << "seed " << seed;
    ASSERT_TRUE(threaded.leader.has_value());
    EXPECT_EQ(*threaded.leader, *simulated.leader) << "seed " << seed;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      EXPECT_EQ(threaded.outcomes[v].role, simulated.nodes[v].role);
      EXPECT_EQ(threaded.outcomes[v].counters.rho_cw,
                simulated.nodes[v].rho_cw);
      EXPECT_EQ(threaded.outcomes[v].counters.rho_ccw,
                simulated.nodes[v].rho_ccw);
    }
  }
}

TEST(Threads, LargerRing) {
  const auto ids = test::shuffled(test::dense_ids(16), 3);
  const auto result = run_on_threads(ids, {}, ThreadAlg::alg2);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, co::theorem1_pulses(16, 16));
  EXPECT_EQ(result.leader_count, 1u);
}


TEST(Alg3Threads, DoubledSchemeAllScramblesSmallRing) {
  const std::vector<std::uint64_t> ids{3, 7, 2};
  for (const auto& flips : test::all_flip_masks(3)) {
    const auto result = run_on_threads(ids, flips, ThreadAlg::alg3_doubled);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.pulses, co::prop15_pulses(3, 7));
    EXPECT_EQ(result.leader_count, 1u);
    EXPECT_EQ(*result.leader, 1u);
  }
}

TEST(Alg3Threads, ImprovedSchemeRepeatedScrambledRuns) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto flips = test::random_flips(ids.size(), seed);
    const auto result =
        run_on_threads(ids, flips, ThreadAlg::alg3_improved);
    ASSERT_TRUE(result.completed) << seed;
    EXPECT_EQ(result.pulses, co::theorem1_pulses(5, 11)) << seed;
    EXPECT_EQ(result.leader_count, 1u) << seed;
  }
}

TEST(Alg1Threads, SingleNodeSelfLoop) {
  const auto result = run_on_threads({6}, {}, ThreadAlg::alg1);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, 6u);
  EXPECT_EQ(result.leader_count, 1u);
  EXPECT_TRUE(result.outcomes[0].stopped);
}

TEST(Threads, NonUniqueIdsStabilizeOnThreadsToo) {
  // Lemma 16 on real threads: duplicated maxima all end Leader.
  const std::vector<std::uint64_t> ids{4, 2, 4, 1};
  const auto result = run_on_threads(ids, {}, ThreadAlg::alg1);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.pulses, 4u * 4u);
  EXPECT_EQ(result.leader_count, 2u);
  EXPECT_EQ(result.outcomes[0].role, co::Role::leader);
  EXPECT_EQ(result.outcomes[2].role, co::Role::leader);
}

}  // namespace
}  // namespace colex::rt
