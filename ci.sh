#!/usr/bin/env bash
# Tier-1 CI: build + full test suite in the default configuration, then
# again under ASan+UBSan, then the runtime (real-thread) tests under TSan,
# plus the static-analysis gate (colex-lint). Each configuration uses its
# own build tree so they never contaminate one another. Exits non-zero on
# the first failing step.
#
#   ./ci.sh             all configurations + smokes + lint (the full gate)
#   ./ci.sh --smoke     default build + full ctest + lint + soak smoke
#   ./ci.sh lint        just the static-analysis stage
#   ./ci.sh soak-smoke  just the soak gate on the default build
#   ./ci.sh coro-smoke  just the coroutine-runtime gate on the default build
#   ./ci.sh metrics-smoke  just the live-telemetry gate on the default build
#   ./ci.sh socket-smoke  just the socket-transport gate on the default build
set -euo pipefail
cd "$(dirname "$0")"

mode="${1:-all}"
case "$mode" in
  all|--all) mode=all ;;
  smoke|--smoke) mode=smoke ;;
  lint|--lint) mode=lint ;;
  soak-smoke|--soak-smoke) mode=soak-smoke ;;
  coro-smoke|--coro-smoke) mode=coro-smoke ;;
  metrics-smoke|--metrics-smoke) mode=metrics-smoke ;;
  socket-smoke|--socket-smoke) mode=socket-smoke ;;
  *)
    echo "usage: $0 [all|--smoke|lint|soak-smoke|coro-smoke|metrics-smoke|socket-smoke]" >&2
    exit 2
    ;;
esac

jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1" label="$2" test_filter="$3"
  shift 3
  echo "==> [$label] configure ($dir)"
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "==> [$label] build"
  cmake --build "$dir" -j "$jobs"
  echo "==> [$label] ctest $test_filter"
  if [ -n "$test_filter" ]; then
    (cd "$dir" && ctest --output-on-failure -j "$jobs" -R "$test_filter")
  else
    (cd "$dir" && ctest --output-on-failure -j "$jobs")
  fi
}

# Static analysis (DESIGN.md §8): the tree must scan clean (justified
# suppressions only) and the rules themselves must still catch every
# planted violation in the fixture corpus. clang-tidy rides along when the
# binary exists; the in-repo linter is the gate either way.
run_lint() {
  echo "==> [lint] configure + build colex-lint"
  cmake -B build -S . -DCOLEX_WERROR=ON >/dev/null
  cmake --build build -j "$jobs" --target colex-lint
  # Wall-clock guard: the interprocedural passes (symbol table, call graph,
  # taint fixpoint) must stay cheap enough to gate every push. 60s is ~100x
  # headroom today; tripping it means a fixpoint regressed, not a slow box.
  local lint_t0 lint_t1
  lint_t0="$(date +%s)"
  echo "==> [lint] tree scan: src tools bench"
  ./build/tools/colex-lint --jobs "$jobs" src tools bench
  echo "==> [lint] rule self-test: tests/lint_fixtures"
  ./build/tools/colex-lint --self-test tests/lint_fixtures
  lint_t1="$(date +%s)"
  if [ "$((lint_t1 - lint_t0))" -gt 60 ]; then
    echo "==> [lint] FAIL: scan + self-test took $((lint_t1 - lint_t0))s (budget 60s)"
    exit 1
  fi
  echo "==> [lint] scan + self-test in $((lint_t1 - lint_t0))s (budget 60s)"
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "==> [lint] clang-tidy (via build/compile_commands.json)"
    find src -name '*.cpp' -print0 \
      | xargs -0 clang-tidy -p build --quiet
  else
    echo "==> [lint] clang-tidy not installed; skipped (colex-lint is the gate)"
  fi
}

# Soak smoke (DESIGN.md §9): a short sharded multi-ring soak under steady
# churn must finish with the service-level gate intact — zero diverged,
# zero safety-violated, zero abandoned elections — verified on the --json
# summary, not just the exit code, so a reporting regression also fails.
run_soak_smoke() {
  local dir="$1" label="$2"
  echo "==> [$label] soak smoke: colex-soak (256 rings, >=200 elections)"
  cmake --build "$dir" -j "$jobs" --target colex-soak >/dev/null
  local summary
  summary="$("$dir"/tools/colex-soak --duration 2 --rings 256 \
      --min-elections 200 --seed 7 --churn steady --json)"
  echo "    $summary"
  echo "$summary" | grep -q '"diverged":0,'
  echo "$summary" | grep -q '"safety_violated":0,'
  echo "$summary" | grep -q '"abandoned":0,'
  echo "$summary" | grep -q '"ok":true'
}

# Coroutine-runtime smoke: bench_e16_coro --smoke runs a 10^4-node election
# on the coroutine executor next to a ThreadRing capacity sweep and writes
# BENCH_E16.json; the gates checked on the artifact are >=2x ThreadRing's
# max ring size AND >=2x its nodes/sec, with every election landing the
# exact paper pulse count.
run_coro_smoke() {
  local dir="$1" label="$2"
  echo "==> [$label] coro smoke: bench_e16_coro --smoke"
  cmake --build "$dir" -j "$jobs" --target bench_e16_coro >/dev/null
  (cd "$dir" && ./bench/bench_e16_coro --smoke)
  grep -q '"gate_speed_ok": true' "$dir/BENCH_E16.json"
  grep -q '"gate_capacity_ok": true' "$dir/BENCH_E16.json"
  grep -q '"gate_ok": true' "$dir/BENCH_E16.json"
}

# Live-telemetry smoke: serve /metrics mid-soak, scrape it with the in-repo
# client (colex-top --raw; no curl dependency), and require (a) the headline
# election counter plus every per-phase pulse series on the wire, and (b)
# the scrape's `# TYPE` family set to equal the end-of-run snapshot rendered
# by `colex-inspect metrics` — one encoder, two views, directly diffable.
run_metrics_smoke() {
  local dir="$1" label="$2"
  echo "==> [$label] metrics smoke: colex-soak --serve + colex-top scrape"
  cmake --build "$dir" -j "$jobs" \
      --target colex-soak colex-top colex-inspect >/dev/null
  local work
  work="$(mktemp -d)"
  "$dir"/tools/colex-soak --duration 4 --rings 256 --shards 2 --seed 11 \
      --churn steady --serve 0 --snapshot "$work/snap.jsonl" --json \
      > "$work/summary.json" 2> "$work/stderr.log" &
  local soak_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^serving metrics on 127\.0\.0\.1://p' \
        "$work/stderr.log" | head -1)"
    [ -n "$port" ] && break
    sleep 0.1
  done
  if [ -z "$port" ]; then
    echo "    soak never announced a metrics port" >&2
    kill "$soak_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 1  # let elections land on every shard before scraping
  "$dir"/tools/colex-top --port "$port" --once --raw > "$work/scrape.txt"
  grep -q '^colex_elections_total ' "$work/scrape.txt"
  for phase in probe elected initiated_wait orientation_flip done adversary; do
    grep -q "^colex_pulses_total{phase=\"$phase\"} " "$work/scrape.txt"
  done
  wait "$soak_pid"
  grep -q '"ok":true' "$work/summary.json"
  "$dir"/tools/colex-inspect metrics "$work/snap.jsonl" > "$work/final.txt"
  diff <(grep '^# TYPE' "$work/scrape.txt" | sort) \
       <(grep '^# TYPE' "$work/final.txt" | sort)
  echo "    live scrape and recorded rendering agree on" \
       "$(grep -c '^# TYPE' "$work/final.txt") metric families"
  rm -rf "$work"
}

# Socket-transport smoke: the cross-substrate conformance battery and the
# multi-process election (real forked colex-ring node processes) must pass,
# then bench_e18_net --smoke reruns socket-vs-coro head to head and writes
# BENCH_E18.json; the gates checked on the artifact are exact paper pulse
# counts everywhere (including the merged multi-process Theorem 1 total)
# and wire-level conservation: sent == consumed == bytes each way.
run_socket_smoke() {
  local dir="$1" label="$2"
  echo "==> [$label] socket smoke: conformance + multi-process + E18 gates"
  cmake --build "$dir" -j "$jobs" \
      --target test_transport_conformance test_net_multiprocess \
      colex-ring bench_e18_net >/dev/null
  (cd "$dir" && ctest --output-on-failure \
      -R "test_transport_conformance|test_net_multiprocess")
  (cd "$dir" && ./bench/bench_e18_net --smoke)
  grep -q '"gate_multiproc_ok": true' "$dir/BENCH_E18.json"
  grep -q '"gate_wire_conserved": true' "$dir/BENCH_E18.json"
  grep -q '"gate_ok": true' "$dir/BENCH_E18.json"
}

if [ "$mode" = lint ]; then
  run_lint
  echo "==> lint green"
  exit 0
fi

if [ "$mode" = soak-smoke ]; then
  cmake -B build -S . -DCOLEX_WERROR=ON >/dev/null
  run_soak_smoke build default
  echo "==> soak smoke green"
  exit 0
fi

if [ "$mode" = coro-smoke ]; then
  cmake -B build -S . -DCOLEX_WERROR=ON >/dev/null
  run_coro_smoke build default
  echo "==> coro smoke green"
  exit 0
fi

if [ "$mode" = metrics-smoke ]; then
  cmake -B build -S . -DCOLEX_WERROR=ON >/dev/null
  run_metrics_smoke build default
  echo "==> metrics smoke green"
  exit 0
fi

if [ "$mode" = socket-smoke ]; then
  cmake -B build -S . -DCOLEX_WERROR=ON >/dev/null
  run_socket_smoke build default
  echo "==> socket smoke green"
  exit 0
fi

# 1. Default configuration: full tier-1 suite. -DCOLEX_WERROR=ON is the
#    CMake default; pinned here so a cached build tree can never drop it.
run_config build default "" -DCOLEX_WERROR=ON

# 2. Static analysis on the tree just built.
run_lint

# 3. Soak smoke on the default build (repeated under the sanitizers below).
run_soak_smoke build default

# 4. Coroutine-runtime smoke on the default build: the executor must beat
#    ThreadRing on both capacity and nodes/sec even in the CI-sized run.
run_coro_smoke build default

# 5. Live-telemetry smoke on the default build: /metrics must be scrapeable
#    mid-soak and agree family-for-family with the recorded rendering.
run_metrics_smoke build default

# 5b. Socket-transport smoke on the default build: conformance battery,
#     forked multi-process election, and the E18 exactness gates.
run_socket_smoke build default

if [ "$mode" = smoke ]; then
  echo "==> smoke green (default build + ctest + lint + soak + coro" \
       "+ metrics + socket smoke)"
  exit 0
fi

# 6. ASan + UBSan: full suite (memory errors and UB anywhere), then the
#    soak smoke on the sanitized binaries.
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
run_config build-asan asan+ubsan "" \
  -DCOLEX_ASAN=ON -DCOLEX_UBSAN=ON
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
run_soak_smoke build-asan asan+ubsan
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1}" \
run_socket_smoke build-asan asan+ubsan

# 7. TSan: the tests that exercise real threads (ThreadRing runtime,
#    automaton host, the threaded fault/chaos harness, the parallel
#    schedule explorer, the sharded soak driver, and the coroutine
#    executor's SPSC channels, Chase-Lev deques, and sleep/wake protocol
#    under multi-worker stealing — including the metrics layer's
#    per-subtree registry ownership, plus the socket transport's
#    node-thread/coordinator handoff and its single-process framing tests;
#    the fork()ing multi-process test stays out, TSan cannot follow forks),
#    then the soak smoke with real data races on the line.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
run_config build-tsan tsan \
  "test_runtime|test_runtime_faults|test_automaton_host|test_parallel_explore|test_obs_metrics|test_obs_export|test_obs_serve|test_svc_soak|test_coro_runtime|test_transport_conformance|test_net_framing" \
  -DCOLEX_TSAN=ON
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
run_soak_smoke build-tsan tsan

# 8. Bench smoke: the n=3 exhaustive sweep must finish, agree across both
#    exploration engines, and show the snapshot engine >= 2x over replay
#    (it writes BENCH_E12.json for the perf trail).
echo "==> [bench-smoke] bench_e12_exhaustive --smoke"
(cd build && ./bench/bench_e12_exhaustive --smoke)

# 9. Observability smoke: E1 exports an instrumented trace, and the
#    inspector must load it, audit conservation, and confirm the Theorem 1
#    pulse bound from the recorded stream alone.
echo "==> [obs-smoke] bench_e1_theorem1 --smoke + colex-inspect check"
(cd build && ./bench/bench_e1_theorem1 --smoke \
  && ./tools/colex-inspect check TRACE_E1.jsonl | tee /dev/stderr \
     | grep -q "theorem1-bound: OK" \
  && ./tools/colex-inspect chrome TRACE_E1.jsonl TRACE_E1.chrome.json \
  && ./tools/colex-inspect diff TRACE_E1.jsonl TRACE_E1.jsonl >/dev/null)

# 10. Fuzz smoke (on the sanitized build, so every generated schedule and
#    fault plan also runs under ASan+UBSan): a fixed-seed clean+faulty
#    campaign must survive with no counterexample; the planted bound defect
#    must be found, shrink to a minimal repro that replays deterministically
#    (colex-fuzz --replay), and export a trace that still passes the REAL
#    Theorem 1 bound in colex-inspect. The committed repro file is the
#    regression gate: the pipeline must keep reproducing it byte-for-byte
#    semantics forever.
echo "==> [fuzz-smoke] colex-fuzz campaigns + replay gates"
(cd build-asan \
  && ./tools/colex-fuzz run --seeds 120 --fault-fraction 0.3 --json \
  && if ./tools/colex-fuzz run --seeds 5 --algs alg2 --planted \
         --repro-out FUZZ_PLANTED.jsonl --trace-out FUZZ_PLANTED_TRACE.jsonl \
         > /dev/null; then
       echo "planted campaign unexpectedly passed"; exit 1
     fi \
  && ./tools/colex-fuzz --replay FUZZ_PLANTED.jsonl \
  && ./tools/colex-inspect check FUZZ_PLANTED_TRACE.jsonl | tee /dev/stderr \
     | grep -q "theorem1-bound: OK" \
  && ./tools/colex-fuzz --replay ../tests/data/planted_bound_repro.jsonl)

echo "==> all configurations green"
