file(REMOVE_RECURSE
  "CMakeFiles/test_colib.dir/test_colib.cpp.o"
  "CMakeFiles/test_colib.dir/test_colib.cpp.o.d"
  "test_colib"
  "test_colib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_colib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
