#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace colex::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + ::strerror(errno);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Deadline Deadline::in_ms(std::uint64_t ms) {
  Deadline d;
  d.at_ns_ = steady_ns() + static_cast<std::int64_t>(ms) * 1'000'000;
  return d;
}

int Deadline::remaining_ms(int cap_ms) const {
  const std::int64_t left_ns = at_ns_ - steady_ns();
  if (left_ns <= 0) return 0;
  const std::int64_t ms = left_ns / 1'000'000 + 1;
  return ms > cap_ms ? cap_ms : static_cast<int>(ms);
}

bool Deadline::expired() const { return steady_ns() >= at_ns_; }

Fd listen_on(std::uint16_t port, std::uint16_t* bound_port,
             std::string* err) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (err != nullptr) *err = errno_string("socket");
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (err != nullptr) *err = errno_string("bind");
    return {};
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) {
    if (err != nullptr) *err = errno_string("listen");
    return {};
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      if (err != nullptr) *err = errno_string("getsockname");
      return {};
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

ConnectResult connect_once(std::uint16_t port) {
  ConnectResult r;
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    r.error = errno_string("socket");
    return r;
  }
  sockaddr_in addr = loopback_addr(port);
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    r.status =
        errno == ECONNREFUSED ? ConnectStatus::refused : ConnectStatus::error;
    r.error = errno_string("connect");
    return r;
  }
  r.fd = std::move(fd);
  r.status = ConnectStatus::ok;
  return r;
}

Fd connect_retry(std::uint16_t port, const Deadline& deadline,
                 std::string* err) {
  for (;;) {
    ConnectResult r = connect_once(port);
    if (r.status == ConnectStatus::ok) return std::move(r.fd);
    if (r.status == ConnectStatus::error) {
      if (err != nullptr) *err = r.error;
      return {};
    }
    // refused: the listener is not up yet — back off briefly and retry
    // until the deadline (loopback refusals resolve in microseconds once
    // the peer binds; 1ms keeps the retry loop cool without adding
    // meaningful formation latency).
    if (deadline.expired()) {
      if (err != nullptr) {
        *err = "connect to 127.0.0.1:" + std::to_string(port) +
               ": refused until deadline";
      }
      return {};
    }
    ::poll(nullptr, 0, 1);
  }
}

Fd accept_one(int listener, const Deadline& deadline, std::string* err) {
  for (;;) {
    pollfd pfd{listener, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, deadline.remaining_ms());
    if (rc < 0 && errno != EINTR) {
      if (err != nullptr) *err = errno_string("poll(accept)");
      return {};
    }
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) return Fd(fd);
      if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        if (err != nullptr) *err = errno_string("accept");
        return {};
      }
    }
    if (deadline.expired()) {
      if (err != nullptr) *err = "accept: deadline expired";
      return {};
    }
  }
}

bool send_all(int fd, const unsigned char* data, std::size_t len,
              const Deadline& deadline, std::string* err) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, deadline.remaining_ms());
      if (deadline.expired()) {
        if (err != nullptr) *err = "send: deadline expired";
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (err != nullptr) *err = errno_string("send");
    return false;
  }
  return true;
}

bool set_nonblocking(int fd, std::string* err) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    if (err != nullptr) *err = errno_string("fcntl(O_NONBLOCK)");
    return false;
  }
  return true;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace colex::net
