// Fixture: C001 — clone completeness for snapshot forks.
#include <cstdint>
#include <memory>

// Field-by-field clone that forgets a member: flagged.
class DriftingCounter {
 public:
  std::unique_ptr<DriftingCounter> clone() const {  // colex-lint: expect(C001)
    auto copy = std::make_unique<DriftingCounter>();
    copy->count_ = count_;
    return copy;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t forgotten_ = 0;
};

// Deliberate omission with a justification: suppressed.
class ObservedCounter {
 public:
  std::unique_ptr<ObservedCounter> clone() const {  // colex-lint: allow(C001) expect-suppressed(C001) fixture: observer_ is rebound by the harness after forking
    auto copy = std::make_unique<ObservedCounter>();
    copy->count_ = count_;
    return copy;
  }

 private:
  std::uint64_t count_ = 0;
  void* observer_ = nullptr;
};

// `*this` through the implicit copy constructor copies every member by
// construction: never flagged.
class CompleteCounter {
 public:
  std::unique_ptr<CompleteCounter> clone() const {
    return std::make_unique<CompleteCounter>(*this);
  }

 private:
  std::uint64_t count_ = 0;
};
