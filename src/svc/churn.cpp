#include "svc/churn.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace colex::svc {

const char* to_string(ChurnPreset preset) {
  switch (preset) {
    case ChurnPreset::calm: return "calm";
    case ChurnPreset::steady: return "steady";
    case ChurnPreset::storm: return "storm";
  }
  return "?";
}

bool preset_from_string(const std::string& s, ChurnPreset& out) {
  for (const ChurnPreset p :
       {ChurnPreset::calm, ChurnPreset::steady, ChurnPreset::storm}) {
    if (s == to_string(p)) {
      out = p;
      return true;
    }
  }
  return false;
}

const char* to_string(SoakAlg alg) {
  switch (alg) {
    case SoakAlg::alg1: return "alg1";
    case SoakAlg::alg2: return "alg2";
  }
  return "?";
}

ChurnProfile ChurnProfile::preset(ChurnPreset preset) {
  ChurnProfile p;  // defaults are the steady profile
  switch (preset) {
    case ChurnPreset::calm:
      p.fault_fraction = 0.15;
      p.crash_cycle_prob = 0.3;
      p.max_crash_cycles = 1;
      p.storm_prob = 0.15;
      p.max_storm_len = 3;
      p.noise_prob = 0.1;
      p.preseed_prob = 0.05;
      p.max_n = 6;
      p.max_id = 10;
      break;
    case ChurnPreset::steady:
      break;
    case ChurnPreset::storm:
      p.fault_fraction = 0.85;
      p.crash_cycle_prob = 0.7;
      p.max_crash_cycles = 3;
      p.storm_prob = 0.8;
      p.max_storm_len = 10;
      p.noise_prob = 0.4;
      p.preseed_prob = 0.3;
      p.max_id = 16;
      break;
  }
  return p;
}

std::uint64_t RingSpec::id_max() const {
  std::uint64_t m = 0;
  for (const auto id : ids) m = std::max(m, id);
  return m;
}

std::uint64_t RingSpec::pulse_bound() const {
  const std::uint64_t m = id_max();
  return m == 0 ? 0 : ids.size() * (2 * m + 1);
}

ChurnEngine::ChurnEngine(std::uint64_t soak_seed, std::size_t slot,
                         ChurnProfile profile)
    : seed_(soak_seed), slot_(slot), profile_(profile) {
  COLEX_EXPECTS(profile_.min_n >= 1 && profile_.min_n <= profile_.max_n);
  COLEX_EXPECTS(profile_.max_id >= profile_.max_n);
  COLEX_EXPECTS(profile_.max_crash_cycles >= 1);
  COLEX_EXPECTS(profile_.max_storm_len >= 1);
}

namespace {

/// Unique IDs for a fresh ring: n distinct draws from [1, max(n, max_id)],
/// in random ring order (same pool idiom as qa's generators).
std::vector<std::uint64_t> sample_ids(std::size_t n, std::uint64_t max_id,
                                      util::Xoshiro256StarStar& rng) {
  const std::uint64_t hi = std::max<std::uint64_t>(n, max_id);
  std::vector<std::uint64_t> pool;
  pool.reserve(hi);
  for (std::uint64_t id = 1; id <= hi; ++id) pool.push_back(id);
  std::vector<std::uint64_t> ids(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t k = rng.below(pool.size());
    ids[v] = pool[k];
    pool[k] = pool.back();
    pool.pop_back();
  }
  return ids;
}

/// The churn adversary's plan for one attempt. `decay` in (0, 1] scales
/// every intensity (the supervisor's backoff); `horizon` is the clean-run
/// event count scripted faults should land inside.
sim::FaultPlan sample_plan(std::size_t n, std::uint64_t horizon, double decay,
                           const ChurnProfile& p,
                           util::Xoshiro256StarStar& rng) {
  sim::FaultPlan plan;
  plan.seed = rng.next();
  const std::size_t channels = 2 * n;
  std::vector<sim::ScriptedFault> script;

  // Crash/recover cycles: each crashes one node and recovers it later. The
  // offsets strictly increase, so within a cycle the recover always follows
  // its crash and the merged script stays valid under FaultPlan::validate().
  if (rng.bernoulli(p.crash_cycle_prob * decay)) {
    const std::size_t cycles = 1 + rng.below(p.max_crash_cycles);
    std::uint64_t at = rng.below(horizon / 2 + 1);
    for (std::size_t i = 0; i < cycles; ++i) {
      const sim::NodeId node = rng.below(n);
      sim::ScriptedFault crash;
      crash.kind = sim::FaultKind::crash;
      crash.at_event = at;
      crash.node = node;
      script.push_back(crash);
      at += 1 + rng.below(horizon / 4 + 1);
      sim::ScriptedFault recover;
      recover.kind = sim::FaultKind::recover;
      recover.at_event = at;
      recover.node = node;
      script.push_back(recover);
      at += 1 + rng.below(horizon / 4 + 1);
    }
  }

  // Fault storm: a burst of channel one-shots landing entirely on a single
  // channel at closely spaced event indices.
  if (rng.bernoulli(p.storm_prob * decay)) {
    const std::size_t channel = rng.below(channels);
    const std::size_t len = 1 + rng.below(p.max_storm_len);
    std::uint64_t at = rng.below(horizon + 1);
    for (std::size_t i = 0; i < len; ++i) {
      sim::ScriptedFault f;
      switch (rng.below(3)) {
        case 0: f.kind = sim::FaultKind::drop; break;
        case 1: f.kind = sim::FaultKind::duplicate; break;
        default: f.kind = sim::FaultKind::spurious; break;
      }
      f.at_event = at;
      f.channel = channel;
      script.push_back(f);
      at += rng.below(3);
    }
  }

  // Merge the cycle and storm streams into one at_event-sorted script.
  // stable_sort keeps each cycle's crash-before-recover order (their
  // offsets differ anyway) and the storm's intra-burst order on ties.
  std::stable_sort(script.begin(), script.end(),
                   [](const sim::ScriptedFault& a, const sim::ScriptedFault& b) {
                     return a.at_event < b.at_event;
                   });
  plan.script = std::move(script);

  // Sustained low-rate noise on every channel (rates in the band E13 showed
  // to be survivable rather than an instant livelock).
  if (rng.bernoulli(p.noise_prob * decay)) {
    sim::ChannelFaultProfile noise;
    const double rate = (0.002 + 0.01 * rng.uniform01()) * decay;
    switch (rng.below(3)) {
      case 0: noise.drop_prob = rate; break;
      case 1: noise.duplicate_prob = rate; break;
      default: noise.spurious_prob = rate; break;
    }
    plan.all_channels = noise;
  }

  // Corrupted initial channel state: pulses nobody sent, already in flight
  // at start.
  if (rng.bernoulli(p.preseed_prob * decay)) {
    plan.preseed_channels.emplace_back(rng.below(channels), 1 + rng.below(3));
  }
  return plan;
}

}  // namespace

RingSpec ChurnEngine::spec(std::uint64_t election, unsigned attempt,
                           unsigned clean_after) const {
  // Decorrelate (seed, slot, election, attempt) through two SplitMix64
  // stages so neighbouring slots, consecutive elections, and successive
  // retry attempts all draw from unrelated streams.
  util::SplitMix64 outer(seed_ + 0x9E3779B97F4A7C15ULL *
                                     static_cast<std::uint64_t>(slot_ + 1));
  util::SplitMix64 inner(outer.next() + 0xBF58476D1CE4E5B9ULL * (election + 1));
  util::Xoshiro256StarStar rng(inner.next() + attempt);

  RingSpec out;
  const std::size_t n =
      profile_.min_n + rng.below(profile_.max_n - profile_.min_n + 1);
  out.alg = rng.bernoulli(0.5) ? SoakAlg::alg1 : SoakAlg::alg2;
  out.ids = sample_ids(n, profile_.max_id, rng);
  out.schedule_seed = rng.next();

  // Event budget: a clean run takes n starts plus ~bound deliveries;
  // duplicates, spurious pulses, and recovery restarts inflate that, so the
  // deadline starts at 4x clean and doubles per retry (exponential
  // backoff). Algorithm 1 under sustained spurious noise livelocks by
  // design — the budget is what converts that into a classified `diverged`
  // attempt instead of a wedged shard.
  const std::uint64_t clean_events =
      out.pulse_bound() + static_cast<std::uint64_t>(n) + 8;
  out.max_events = (4 * clean_events) << std::min(attempt, 6u);

  const double decay = 1.0 / static_cast<double>(1u << std::min(attempt, 16u));
  if (attempt < clean_after &&
      rng.bernoulli(profile_.fault_fraction * decay)) {
    out.faults = sample_plan(n, clean_events, decay, profile_, rng);
  }
  COLEX_ENSURES(out.faults.validate().empty());
  return out;
}

}  // namespace colex::svc
