// colex-soak: election-as-a-service soak driver over src/svc.
//
//   colex-soak [options]
//
// options:
//   --duration S        wall-clock seconds to run (default 10)
//   --rings N           concurrent ring slots (default 1024)
//   --shards N          worker threads (default 0 = hardware concurrency)
//   --seed S            soak seed (default 1)
//   --churn P           churn profile: calm | steady | storm (default steady)
//   --min-elections N   keep running past --duration until N finished
//   --max-elections N   stop early after N finished (0 = duration-driven)
//   --max-attempts N    supervisor attempt budget per election (default 4)
//   --clean-after N     attempts >= N run fault-free (default 2)
//   --backend B         substrate for clean attempts: sim | coro | socket
//                       (default sim; socket runs them as real loopback
//                       TCP rings via src/net; coro runs them on the
//                       coroutine
//                       executor — faulty attempts always run on sim)
//   --snapshot FILE     periodically rewrite FILE as a colex-trace-v1
//                       metrics snapshot (view with `colex-inspect summary`)
//   --snapshot-every S  snapshot cadence in seconds (default 1)
//   --serve PORT        serve live Prometheus /metrics (plus /healthz and
//                       /debug/flight) on 127.0.0.1:PORT for the run's
//                       duration; 0 picks an ephemeral port. The bound
//                       port is announced on stderr as
//                       "serving metrics on 127.0.0.1:PORT". Scrape with
//                       colex-top or any Prometheus client.
//   --json              print the one-line machine-readable summary instead
//                       of the human report
//
// Exit status: 0 the service-level gate held (zero safety-violated, zero
// diverged, zero abandoned; every started election completed within the
// Theorem 1 pulse bound with a unique max-ID leader); 1 the gate failed;
// 2 usage error.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "svc/soak.hpp"

namespace {

using namespace colex;

int usage() {
  std::cerr << "usage:\n"
               "  colex-soak [--duration S] [--rings N] [--shards N]\n"
               "             [--seed S] [--churn calm|steady|storm]\n"
               "             [--min-elections N] [--max-elections N]\n"
               "             [--max-attempts N] [--clean-after N]\n"
               "             [--backend sim|coro|socket]\n"
               "             [--snapshot FILE] [--snapshot-every S]\n"
               "             [--serve PORT] [--json]\n";
  return 2;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

bool parse_f64(const std::string& s, double& out) {
  try {
    std::size_t used = 0;
    out = std::stod(s, &used);
    return used == s.size() && out >= 0.0;
  } catch (...) {
    return false;
  }
}

void print_human(const svc::SoakReport& r) {
  std::cout << "soak: " << r.rings << " rings on " << r.shards_used
            << " shards, " << r.wall_seconds << "s wall\n"
            << "  elections: " << r.started << " started, " << r.completed
            << " completed, " << r.retried << " retried, " << r.abandoned
            << " abandoned\n"
            << "  failures: " << r.safety_violated << " safety-violated, "
            << r.diverged << " diverged, " << r.stalled << " stalled\n"
            << "  attempts: " << r.attempts << " (" << r.coro_attempts
            << " on coro, " << r.socket_attempts << " on socket, "
            << r.faults_applied << " faults applied)\n"
            << "  throughput: " << r.elections_per_second << " elections/s\n"
            << "  latency ms: p50=" << r.latency_ms.p50
            << " p95=" << r.latency_ms.p95 << " p99=" << r.latency_ms.p99
            << " max=" << r.latency_ms.max << "\n";
  for (std::size_t s = 0; s < r.shards.size(); ++s) {
    const svc::ShardStats& st = r.shards[s];
    std::cout << "  shard " << s << ": " << st.elections << " elections, "
              << st.attempts << " attempts, utilization=" << st.utilization
              << (st.stalled ? " STALLED" : "") << "\n";
  }
  for (const std::string& v : r.violations) {
    std::cout << "  violation: " << v << "\n";
  }
  if (r.snapshots_written > 0) {
    std::cout << "  snapshots written: " << r.snapshots_written << "\n";
  }
  std::cout << (r.ok() ? "OK: service-level gate held"
                       : "FAIL: service-level gate violated")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  svc::SoakOptions options;
  bool json = false;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_value = i + 1 < args.size();
    std::uint64_t u = 0;
    double f = 0.0;
    if (a == "--json") {
      json = true;
    } else if (a == "--duration" && has_value && parse_f64(args[++i], f)) {
      options.duration_seconds = f;
    } else if (a == "--rings" && has_value && parse_u64(args[++i], u) &&
               u >= 1) {
      options.rings = static_cast<std::size_t>(u);
    } else if (a == "--shards" && has_value && parse_u64(args[++i], u)) {
      options.shards = static_cast<std::size_t>(u);
    } else if (a == "--seed" && has_value && parse_u64(args[++i], u)) {
      options.seed = u;
    } else if (a == "--churn" && has_value) {
      svc::ChurnPreset preset{};
      if (!svc::preset_from_string(args[++i], preset)) return usage();
      options.churn = svc::ChurnProfile::preset(preset);
    } else if (a == "--min-elections" && has_value && parse_u64(args[++i], u)) {
      options.min_elections = u;
    } else if (a == "--max-elections" && has_value && parse_u64(args[++i], u)) {
      options.max_elections = u;
    } else if (a == "--max-attempts" && has_value && parse_u64(args[++i], u) &&
               u >= 1) {
      options.policy.max_attempts = static_cast<unsigned>(u);
    } else if (a == "--clean-after" && has_value && parse_u64(args[++i], u)) {
      options.policy.clean_after_attempts = static_cast<unsigned>(u);
    } else if (a == "--backend" && has_value) {
      if (!svc::backend_from_string(args[++i], options.policy.backend)) {
        return usage();
      }
    } else if (a == "--snapshot" && has_value) {
      options.snapshot_path = args[++i];
    } else if (a == "--snapshot-every" && has_value &&
               parse_f64(args[++i], f) && f > 0.0) {
      options.snapshot_every_seconds = f;
    } else if (a == "--serve" && has_value && parse_u64(args[++i], u) &&
               u <= 65535) {
      options.serve = static_cast<int>(u);
    } else {
      return usage();
    }
  }
  if (options.policy.clean_after_attempts >= options.policy.max_attempts) {
    std::cerr << "colex-soak: --clean-after must be < --max-attempts "
                 "(the self-healing guarantee needs a clean final rung)\n";
    return 2;
  }

  if (options.serve >= 0) {
    // Announced on stderr (unbuffered relative to the report on stdout) so
    // scripts can discover an ephemeral port while the soak is running.
    options.on_serve = [](std::uint16_t port) {
      std::cerr << "serving metrics on 127.0.0.1:" << port << std::endl;
    };
  }

  const svc::SoakReport report = svc::run_soak(options);
  if (json) {
    std::cout << report.to_json() << "\n";
  } else {
    print_human(report);
  }
  return report.ok() ? 0 : 1;
}
