// colex-lint: model-conformance, obliviousness-taint and concurrency
// static analysis for the colex tree (DESIGN.md §8).
//
//   colex-lint [--json] [--jobs N] <path>...   scan files/directories
//   colex-lint --self-test <path>...           verify rules against planted
//                                              fixtures (tests/lint_fixtures)
//   colex-lint --list-rules                    print the rule catalog
//                                              (id, pass, summary)
//
// Suppressions (justify them — reviewers read these):
//   // colex-lint: allow(C001) <why this is a false positive>
//   // colex-lint: allow-file(D002) <why, for the whole file>
//
// Exit status mirrors colex-fuzz: 0 clean, 1 findings (or self-test
// mismatch), 2 usage / I-O error.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "lint/driver.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  colex-lint [--json] [--jobs N] <path>...\n"
               "  colex-lint --self-test <path>...\n"
               "  colex-lint --list-rules\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool self_test = false;
  std::size_t jobs = 4;  // findings are identical for any worker count
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::cerr << "colex-lint: --jobs needs a worker count\n";
        return usage();
      }
      const long n = std::strtol(argv[++i], nullptr, 10);
      if (n < 1 || n > 256) {
        std::cerr << "colex-lint: --jobs wants 1..256, got '" << argv[i]
                  << "'\n";
        return usage();
      }
      jobs = static_cast<std::size_t>(n);
    } else if (arg == "--list-rules") {
      for (const auto& rule : colex::lint::rule_catalog()) {
        std::cout << rule.id << "  " << rule.pass
                  << std::string(rule.pass.size() < 12
                                     ? 12 - rule.pass.size()
                                     : 1,
                                 ' ')
                  << rule.summary << "\n";
      }
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "colex-lint: unknown option '" << arg << "'\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  if (self_test) {
    const auto result = colex::lint::run_self_test(paths);
    for (const std::string& p : result.problems) {
      std::cerr << "colex-lint self-test: " << p << "\n";
    }
    std::cout << "colex-lint self-test: " << result.expectations
              << " expectations, " << result.rules_exercised.size()
              << " rules exercised, "
              << (result.ok ? "all matched" : "MISMATCH") << "\n";
    return result.ok ? 0 : 1;
  }

  const auto outcome = colex::lint::scan_paths(paths, jobs);
  if (json) {
    colex::lint::print_json(std::cout, outcome);
  } else {
    colex::lint::print_human(std::cout, outcome);
  }
  return colex::lint::exit_code(outcome);
}
