#include "lint/callgraph.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace colex::lint {

namespace {

/// Identifiers that look like `name(` but are never project calls.
bool is_call_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",        "for",      "while",    "switch",      "catch",
      "return",    "sizeof",   "alignof",  "alignas",     "decltype",
      "noexcept",  "requires", "throw",    "new",         "delete",
      "co_await",  "co_yield", "co_return", "static_assert",
      "defined",   "assert",   "operator", "typeid",
  };
  return kKeywords.count(s) != 0;
}

}  // namespace

CallGraph build_call_graph(const std::vector<SourceFile>& files,
                           const ProjectIndex& project,
                           const SymbolTable& symbols) {
  CallGraph graph;
  graph.calls.resize(symbols.symbols.size());
  graph.edges.resize(symbols.symbols.size());
  for (std::size_t s = 0; s < symbols.symbols.size(); ++s) {
    const FunctionSymbol& sym = symbols.symbols[s];
    const FunctionDef& fn = project.files[sym.file].functions[sym.fn];
    const auto& toks = files[sym.file].tokens;
    if (fn.body_end <= fn.body_begin) continue;
    std::set<std::size_t> targets;
    for (std::size_t i = fn.body_begin;
         i + 1 < fn.body_end && i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::identifier) continue;
      if (toks[i + 1].kind != Tok::punct || toks[i + 1].text != "(") continue;
      if (is_call_keyword(toks[i].text)) continue;
      // `if constexpr (...)` puts an identifier before the paren too.
      if (toks[i].text == "constexpr") continue;
      graph.calls[s].push_back(CallSite{toks[i].text, i, toks[i].line});
      const auto it = symbols.by_name.find(toks[i].text);
      if (it == symbols.by_name.end()) continue;
      for (const std::size_t t : it->second) {
        if (t != s) targets.insert(t);
      }
    }
    graph.edges[s].assign(targets.begin(), targets.end());
  }
  return graph;
}

std::vector<bool> reachable_from(
    const CallGraph& graph, const SymbolTable& symbols,
    const std::vector<std::size_t>& roots,
    const std::function<bool(const FunctionSymbol&)>& expand,
    std::vector<std::size_t>* origin) {
  std::vector<bool> reached(symbols.symbols.size(), false);
  if (origin) origin->assign(symbols.symbols.size(), 0);
  std::deque<std::size_t> queue;
  for (const std::size_t r : roots) {
    if (r >= reached.size() || reached[r]) continue;
    reached[r] = true;
    if (origin) (*origin)[r] = r;
    queue.push_back(r);
  }
  while (!queue.empty()) {
    const std::size_t s = queue.front();
    queue.pop_front();
    for (const std::size_t t : graph.edges[s]) {
      if (reached[t] || !expand(symbols.symbols[t])) continue;
      reached[t] = true;
      if (origin) (*origin)[t] = (*origin)[s];
      queue.push_back(t);
    }
  }
  return reached;
}

}  // namespace colex::lint
