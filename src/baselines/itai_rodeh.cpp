// Itai-Rodeh (1990): randomized leader election on an *anonymous* ring of
// known size n. Active nodes draw random IDs per phase; messages carry
// (phase, id, hop count, uniqueness bit) and circulate clockwise. A message
// returning to its originator (hop == n) with the bit intact means the ID
// was the round's unique maximum: leader. Duplicated maxima redraw.
//
// The paper cites this line of work (§1.2, [26]) for the fact that knowing
// n buys terminating anonymous election — the content-oblivious Theorem 3
// must instead settle for quiescent stabilization without knowledge of n.
#include <memory>

#include "baselines/run_ring.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace colex::baselines {
namespace {

class ItaiRodehNode final : public BaselineNode {
 public:
  ItaiRodehNode(std::size_t n, std::uint64_t seed)
      : n_(static_cast<std::uint32_t>(n)), rng_(seed) {}

  std::unique_ptr<MsgAutomaton> clone() const override {
    return std::make_unique<ItaiRodehNode>(*this);
  }

  void start(MsgContext& ctx) override { new_phase(ctx); }

  void react(MsgContext& ctx) override {
    while (auto m = ctx.recv(sim::Port::p0)) {
      if (terminated()) return;
      if (m->kind == Msg::Kind::announce) {
        on_announce(ctx, *m);
        continue;
      }
      COLEX_ASSERT(m->kind == Msg::Kind::candidate);
      handle(ctx, *m);
    }
  }

 private:
  void handle(MsgContext& ctx, const Msg& m) {
    if (is_leader_) return;  // draining strays
    if (m.hops == n_) {
      // The message is back at its originator (hop-counted full circle).
      if (active_ && m.phase == phase_ && m.value == id_) {
        if (m.flag) {
          start_announce(ctx, id_);  // unique maximum of this phase
        } else {
          new_phase(ctx);  // duplicated maximum: redraw
        }
      }
      // A passive originator silently retires its stale message.
      return;
    }
    if (!active_) {
      forward(ctx, m);
      return;
    }
    // Lexicographic comparison on (phase, id).
    if (m.phase > phase_ || (m.phase == phase_ && m.value > id_)) {
      active_ = false;
      forward(ctx, m);
    } else if (m.phase == phase_ && m.value == id_) {
      Msg dup = m;
      dup.flag = false;  // mark: this ID is not unique in this phase
      forward(ctx, dup);
    }
    // Strictly smaller (phase, id): swallow.
  }

  void forward(MsgContext& ctx, Msg m) {
    m.hops += 1;
    emit(ctx, kCw, m);
  }

  void new_phase(MsgContext& ctx) {
    ++phase_;
    id_ = rng_.in_range(1, 2 * static_cast<std::uint64_t>(n_));
    Msg m;
    m.kind = Msg::Kind::candidate;
    m.value = id_;
    m.phase = phase_;
    m.hops = 1;
    m.flag = true;
    emit(ctx, kCw, m);
  }

  std::uint32_t n_;
  util::Xoshiro256StarStar rng_;
  std::uint32_t phase_ = 0;
  std::uint64_t id_ = 0;
  bool active_ = true;
};

}  // namespace

BaselineResult itai_rodeh(std::size_t n, std::uint64_t seed,
                          sim::Scheduler& scheduler,
                          const MsgRunOptions& opts) {
  COLEX_EXPECTS(n >= 1);
  util::SplitMix64 seeder(seed);
  return detail::run_ring(
      n,
      [n, &seeder](sim::NodeId) {
        return std::make_unique<ItaiRodehNode>(n, seeder.next());
      },
      scheduler, opts);
}

}  // namespace colex::baselines
