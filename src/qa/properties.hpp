// Oracles for the property-based fuzzing harness: a registry of named
// properties checked against one executed FuzzCase.
//
// The clean-case property set is the paper's full contract — per-event
// invariants (co/invariants.hpp), quiescence, quiescent termination
// (Algorithm 2), a valid election outcome, the *exact* pulse-count claims
// (Corollary 13, Theorems 1-2, Proposition 15), trace conservation, and
// schedule-replay determinism. Faulty cases intentionally check only the
// last two: a fault plan is licensed to break the theorems (that boundary
// is what the fault harness explores), but a faithfully recorded faulty run
// must still audit clean and replay bit-identically.
//
// check_case returns the FIRST failing property by name; the shrinker's
// predicate is "the same property still fails", which keeps minimization
// anchored to one defect instead of sliding between unrelated ones.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "co/roles.hpp"
#include "qa/generators.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace colex::qa {

/// Everything observable about one execution of a FuzzCase.
struct RunOutcome {
  sim::RunReport report;
  sim::PulseNetwork::Counters counters;
  std::vector<co::Role> roles;
  std::optional<sim::NodeId> leader;
  std::size_t leader_count = 0;
  /// Declared CW ports (non-oriented algorithms only; empty otherwise).
  std::vector<sim::Port> cw_ports;
  /// First per-event invariant diagnostic (clean runs only; empty = held).
  std::string invariant_diag;
  /// Trace-audit diagnostic (empty = conservation held).
  std::string audit_diag;
  /// The channel choices actually executed — pins the schedule for replay
  /// and shrinking even when the case was driven by a generated scheduler.
  std::vector<std::size_t> tape;
  std::vector<sim::TraceEvent> trace;
};

struct PropertyOptions {
  /// Enables the planted off-by-one bound property (pulses <= bound - 1):
  /// deliberately false for Algorithm 2, whose pulse count is *exactly* the
  /// bound, so the fuzzer provably finds it. The exported trace still
  /// satisfies the real bound, so the repro round-trips through
  /// `colex-inspect check` cleanly.
  bool planted_bound_bug = false;
  /// Re-executes the recorded tape on a fresh network and requires the
  /// identical outcome (counters, roles, quiescence).
  bool check_replay = true;
};

struct CaseResult {
  std::string failed_property;  ///< empty = all properties held
  std::string diagnostic;
  RunOutcome outcome;

  bool passed() const { return failed_property.empty(); }
};

/// Builds the case's ring with fresh automatons (also the recovery factory
/// for crash/recover fault plans).
sim::PulseNetwork build_case_network(const FuzzCase& c);
std::unique_ptr<sim::PulseAutomaton> make_automaton(const FuzzCase& c,
                                                    sim::NodeId v);

/// The exact pulse count the paper predicts for a clean quiescent run of
/// this case: Corollary 13's n*IDmax for Algorithm 1, the pulse_bound()
/// formula (which the other algorithms meet with equality) otherwise.
std::uint64_t exact_pulses(const FuzzCase& c);

/// Executes the case once (tape replay if c.tape is non-empty, else the
/// generated scheduler) with tracing and, for clean cases, per-event
/// invariant checks attached.
RunOutcome execute_case(const FuzzCase& c);

/// Runs the applicable property set and reports the first failure.
CaseResult check_case(const FuzzCase& c, const PropertyOptions& opts = {});

/// The property names check_case may report for this case, in check order.
std::vector<std::string> property_names(const FuzzCase& c,
                                        const PropertyOptions& opts);

/// Cross-engine oracle: explores the case's configuration with both the
/// snapshot and replay engines under the same budget and requires identical
/// stats and identical per-leaf outcomes. Clean cases only. Empty = agree.
std::string check_engine_agreement(const FuzzCase& c, std::uint64_t budget);

/// Cross-substrate oracle: runs the same ids/orientation on the ThreadRing
/// runtime, the coroutine executor (two workers) and — for rings of at most
/// eight nodes — the real-socket backend, and requires every substrate to
/// agree with the simulator on the leader set and the exact paper-predicted
/// pulse count (the socket leg additionally proves sent == consumed at
/// quiescence). Clean cases only. Empty = agree.
std::string check_runtime_agreement(const FuzzCase& c,
                                    std::uint64_t timeout_ms = 30'000);

}  // namespace colex::qa
