#include "coro/run.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace colex::coro {

CoroRunResult run_on_coro(const std::vector<std::uint64_t>& ids,
                          const std::vector<bool>& port_flips,
                          rt::ThreadAlg alg, const CoroRunOptions& options) {
  COLEX_EXPECTS(!ids.empty());
  const std::size_t n = ids.size();
  Executor ex(n, port_flips,
              ExecutorOptions{options.workers, options.timeout_ms,
                              options.metrics});

  // Spawn the same template transcriptions ThreadRing runs, over CoroIo.
  // The tasks own the coroutine frames; the executor only borrows handles.
  std::vector<rt::ElectionTask> tasks;
  tasks.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    tasks.push_back(
        rt::spawn_alg(alg, ex.io(v), ids[static_cast<std::size_t>(v)]));
    ex.bind(v, tasks.back().handle());
  }

  CoroRunResult result;
  result.completed = ex.run();
  result.pulses = ex.total_sent();
  result.stats = ex.stats();
  if (!result.completed) result.stall_dump = ex.stall_dump();

  result.outcomes.reserve(n);
  for (const auto& task : tasks) {
    result.outcomes.push_back(task.outcome());  // rethrows algorithm errors
  }
  rt::tally_leaders(result);
  if (options.metrics != nullptr) {
    // Per-phase pulse/wait series plus the Theorem 1 margin, mirroring
    // run_on_threads (the coroutine fabric is clean: no injected pulses to
    // exclude).
    rt::publish_phase_pulses(*options.metrics, "coro.pulses", result.outcomes,
                             "coro.waits");
    const std::uint64_t id_max = *std::max_element(ids.begin(), ids.end());
    std::uint64_t bound = 0;
    switch (alg) {
      case rt::ThreadAlg::alg1: bound = n * id_max; break;
      case rt::ThreadAlg::alg2: bound = n * (2 * id_max + 1); break;
      case rt::ThreadAlg::alg3_doubled: bound = n * (4 * id_max - 1); break;
      case rt::ThreadAlg::alg3_improved: bound = n * (2 * id_max + 1); break;
    }
    options.metrics->gauge("coro.pulse_bound").set(static_cast<double>(bound));
    options.metrics->gauge("coro.pulse_margin")
        .set(static_cast<double>(bound) - static_cast<double>(result.pulses));
  }
  return result;
}

}  // namespace colex::coro
