file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_exhaustive.dir/bench_e12_exhaustive.cpp.o"
  "CMakeFiles/bench_e12_exhaustive.dir/bench_e12_exhaustive.cpp.o.d"
  "bench_e12_exhaustive"
  "bench_e12_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
