# Empty compiler generated dependencies file for colex_colib.
# This may be replaced when dependencies are built.
