// E12 — Exhaustive adversary enumeration: for small rings, EVERY possible
// asynchronous delivery order is explored (model checking, not sampling),
// and on every complete execution the paper's claims hold: unique max-ID
// leader, exact pulse formula, quiescent termination (Alg 2) /
// stabilization (Alg 1/3), consistent orientation (Alg 3).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/alg3.hpp"
#include "co/election.hpp"
#include "sim/explore.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

struct Row {
  std::string config;
  sim::ExploreStats stats;
  std::uint64_t violations = 0;
};

Row explore_alg2(const std::vector<std::uint64_t>& ids) {
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  Row row;
  row.config = "alg2 n=" + std::to_string(ids.size());
  row.stats = sim::explore_all_schedules(
      [&ids] {
        auto net = sim::PulseNetwork::ring(ids.size());
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
        }
        return net;
      },
      [&](sim::PulseNetwork& net) {
        std::size_t leaders = 0;
        bool ok = net.total_sent() ==
                  co::theorem1_pulses(ids.size(), id_max);
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          const auto& alg = net.automaton_as<co::Alg2Terminating>(v);
          ok = ok && alg.terminated();
          if (alg.role() == co::Role::leader) {
            ++leaders;
            ok = ok && alg.id() == id_max;
          }
        }
        if (!ok || leaders != 1) ++row.violations;
      },
      8'000'000);
  return row;
}

Row explore_alg1(const std::vector<std::uint64_t>& ids) {
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  Row row;
  row.config = "alg1 n=" + std::to_string(ids.size());
  row.stats = sim::explore_all_schedules(
      [&ids] {
        auto net = sim::PulseNetwork::ring(ids.size());
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          net.set_automaton(v,
                            std::make_unique<co::Alg1Stabilizing>(ids[v]));
        }
        return net;
      },
      [&](sim::PulseNetwork& net) {
        bool ok = net.total_sent() == ids.size() * id_max;
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          const auto& alg = net.automaton_as<co::Alg1Stabilizing>(v);
          ok = ok && (alg.role() == co::Role::leader) == (ids[v] == id_max);
          ok = ok && alg.counters().rho_cw == id_max;
        }
        if (!ok) ++row.violations;
      },
      8'000'000);
  return row;
}

Row explore_alg3(const std::vector<std::uint64_t>& ids,
                 const std::vector<bool>& flips) {
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  Row row;
  row.config = "alg3 n=" + std::to_string(ids.size()) + " scrambled";
  row.stats = sim::explore_all_schedules(
      [&] {
        auto net = sim::PulseNetwork::ring(ids.size(), flips);
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          co::Alg3NonOriented::Options options;
          net.set_automaton(
              v, std::make_unique<co::Alg3NonOriented>(ids[v], options));
        }
        return net;
      },
      [&](sim::PulseNetwork& net) {
        bool ok = net.total_sent() ==
                  co::theorem1_pulses(ids.size(), id_max);
        std::size_t leaders = 0, physically_cw = 0;
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          const auto& alg = net.automaton_as<co::Alg3NonOriented>(v);
          if (alg.role() == co::Role::leader) {
            ++leaders;
            ok = ok && alg.initial_id() == id_max;
          }
          if (alg.cw_port() == co::physical_cw_port(flips, v)) {
            ++physically_cw;
          }
        }
        ok = ok && leaders == 1 &&
             (physically_cw == 0 || physically_cw == ids.size());
        if (!ok) ++row.violations;
      },
      8'000'000);
  return row;
}

}  // namespace

int main() {
  bench::banner(
      "E12  Exhaustive schedule enumeration (bench_e12_exhaustive)",
      "the theorems hold on EVERY asynchronous delivery order, not just "
      "sampled ones — verified by enumerating the adversary's full choice "
      "tree for small rings");

  std::vector<Row> rows;
  rows.push_back(explore_alg2({3}));
  rows.push_back(explore_alg2({1, 2}));
  rows.push_back(explore_alg2({4, 2}));
  rows.push_back(explore_alg2({2, 3, 1}));
  rows.push_back(explore_alg1({2, 3, 1}));
  rows.push_back(explore_alg1({4, 2, 3}));
  rows.push_back(explore_alg3({2, 3}, {true, false}));
  rows.push_back(explore_alg3({3, 1}, {false, false}));

  util::Table table({"configuration", "distinct schedules", "max depth",
                     "exhaustive", "violations"});
  bool all_ok = true;
  for (const auto& row : rows) {
    all_ok = all_ok && row.stats.exhaustive() && row.violations == 0;
    table.add_row({row.config, util::Table::num(row.stats.leaves),
                   util::Table::num(row.stats.max_depth),
                   row.stats.exhaustive() ? "yes" : "NO",
                   util::Table::num(row.violations)});
  }
  table.print(std::cout);
  bench::verdict(all_ok,
                 "every enumerated schedule elects the max-ID node with the "
                 "exact pulse formula");
  return all_ok ? 0 : 1;
}
