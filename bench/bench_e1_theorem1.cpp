// E1 — Theorem 1: Algorithm 2 elects the max-ID node on oriented rings with
// quiescent termination and EXACTLY n(2*IDmax + 1) pulses, for every ring
// size, ID pattern, and adversarial schedule.
#include <iostream>

#include "bench_common.hpp"
#include "co/election.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

int main() {
  using namespace colex;
  bench::banner(
      "E1  Theorem 1: quiescently terminating leader election "
      "(bench_e1_theorem1)",
      "message complexity is exactly n(2*IDmax+1); the max-ID node wins; "
      "termination is quiescent under every adversary");
  bench::WallTimer total;
  bench::JsonReport report("E1", "Theorem 1 exact message complexity");

  struct Pattern {
    const char* name;
    std::vector<std::uint64_t> ids;
  };

  util::Table table({"n", "IDmax", "pattern", "schedulers", "pulses",
                     "n(2*IDmax+1)", "exact", "quiescent+terminated"});
  bool all_ok = true;

  for (const std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    std::vector<Pattern> patterns;
    patterns.push_back({"dense-shuffled",
                        util::shuffled(util::dense_ids(n), n * 7 + 1)});
    patterns.push_back({"sparse-16x", util::sparse_ids(n, 16 * n, n + 3)});
    // Descending along the ring: worst case for Chang-Roberts; Theorem 1's
    // cost must not care.
    std::vector<std::uint64_t> desc(n);
    for (std::size_t v = 0; v < n; ++v) desc[v] = n - v;
    patterns.push_back({"descending", std::move(desc)});

    for (auto& pattern : patterns) {
      std::uint64_t id_max = 0;
      for (const auto id : pattern.ids) id_max = std::max(id_max, id);
      const std::uint64_t formula = co::theorem1_pulses(n, id_max);

      // Large rings get fewer schedulers to keep runtime sane.
      const std::size_t randoms = n <= 64 ? 3 : 1;
      auto schedulers = sim::standard_schedulers(randoms);
      bool exact = true, clean = true;
      std::uint64_t measured = 0;
      for (auto& named : schedulers) {
        const auto result =
            co::elect_oriented_terminating(pattern.ids, *named.scheduler);
        measured = result.pulses;
        exact = exact && result.pulses == formula &&
                result.valid_election() &&
                pattern.ids[*result.leader] == id_max;
        clean = clean && result.quiescent && result.all_terminated &&
                result.report.deliveries_to_terminated == 0;
      }
      all_ok = all_ok && exact && clean;
      table.add_row({util::Table::num(static_cast<std::uint64_t>(n)),
                     util::Table::num(id_max), pattern.name,
                     util::Table::num(
                         static_cast<std::uint64_t>(schedulers.size())),
                     util::Table::num(measured), util::Table::num(formula),
                     exact ? "yes" : "NO", clean ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  report.root().set("all_ok", all_ok);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "pulse counts match n(2*IDmax+1) exactly in every "
                 "configuration and under every scheduler");
  return all_ok ? 0 : 1;
}
