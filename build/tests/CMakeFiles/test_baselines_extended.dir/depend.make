# Empty dependencies file for test_baselines_extended.
# This may be replaced when dependencies are built.
