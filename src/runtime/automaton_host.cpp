#include "runtime/automaton_host.hpp"

#include <thread>

#include "util/contracts.hpp"

namespace colex::rt {
namespace {

/// sim::Context implementation backed by the thread fabric's ports.
class ThreadContext final : public sim::PulseContext {
 public:
  ThreadContext(NodeIo& io, sim::NodeId self) : io_(io), self_(self) {}

  sim::NodeId self() const override { return self_; }
  std::size_t queued(sim::Port p) const override { return io_.pending(p); }
  std::optional<sim::Pulse> recv(sim::Port p) override {
    if (!io_.recv(p)) return std::nullopt;
    return sim::Pulse{};
  }
  using sim::PulseContext::send;
  void send(sim::Port p, sim::Pulse) override { io_.send(p); }
  // Deliveries from peer threads land in the port queues while a react is
  // executing; queue-contents invariants are not point-in-time sound here.
  bool serialized_reactions() const override { return false; }

 private:
  NodeIo& io_;
  sim::NodeId self_;
};

}  // namespace

HostRunResult run_automata_on_threads(std::size_t n,
                                      const std::vector<bool>& port_flips,
                                      const HostFactory& factory,
                                      std::uint64_t timeout_ms) {
  COLEX_EXPECTS(n >= 1);
  ThreadRing ring(n, port_flips);

  HostRunResult result;
  result.automata.reserve(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    auto automaton = factory(v);
    COLEX_EXPECTS(automaton != nullptr);
    result.automata.push_back(std::move(automaton));
  }

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    workers.emplace_back([&ring, &result, v] {
      NodeIo io = ring.io(v);
      ThreadContext ctx(io, v);
      auto& automaton = *result.automata[v];
      automaton.start(ctx);
      automaton.react(ctx);
      while (!automaton.terminated()) {
        if (!io.wait_any()) break;  // harness stop: quiescence or timeout
        automaton.react(ctx);
      }
      ring.worker_finished();
    });
  }

  result.completed = ring.monitor(timeout_ms);
  for (auto& w : workers) w.join();

  result.pulses = ring.total_sent();
  result.all_terminated = true;
  for (const auto& automaton : result.automata) {
    if (!automaton->terminated()) result.all_terminated = false;
  }
  return result;
}

}  // namespace colex::rt
