// colex-ring: run a content-oblivious election on a real socket ring, one
// OS process per node.
//
//   colex-ring run   --ids 6,11,3,9,1,7 [--alg A] [--flips 0,1,0,0,1,0]
//                    [--base-port P] [--timeout-ms N] [--json]
//   colex-ring coord --ring-size N [--port P] [--timeout-ms N] [--json]
//   colex-ring node  --index I --ring-size N --id ID --coordinator-port P
//                    [--alg A] [--flip] [--data-port P] [--timeout-ms N]
//
// `run` is the one-command demo: it forks one child per node, each child
// joins the coordinator's control plane, dials its ring neighbours over
// TCP on localhost, and runs the election; the parent plays coordinator
// and prints the merged verdict (leader, exact pulse count, quiescence
// counters).
//
// `coord` + `node` split the same run across terminals (or machines
// sharing a loopback): start the coordinator first — it announces
// "coordinator listening on PORT" — then launch one `node` per index
// against that port.
//
// Algorithms (--alg): alg1 | alg2 (default) | alg3-doubled |
// alg3-improved. The alg3 variants accept --flips/--flip: ports mounted
// against the ring orientation, which the algorithm must overcome.
//
// Exit status: 0 the election completed (coord/run: with a unique
// leader); 1 it failed or stalled; 2 usage error.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "co/roles.hpp"
#include "net/coordinator.hpp"
#include "net/node.hpp"
#include "net/run.hpp"
#include "runtime/blocking_algs.hpp"

namespace {

using namespace colex;

int usage() {
  std::cerr
      << "usage:\n"
         "  colex-ring run   --ids 6,11,3,9,1,7 [--alg A] [--flips 0,1,...]\n"
         "                   [--base-port P] [--timeout-ms N] [--json]\n"
         "  colex-ring coord --ring-size N [--port P] [--timeout-ms N]\n"
         "                   [--json]\n"
         "  colex-ring node  --index I --ring-size N --id ID\n"
         "                   --coordinator-port P [--alg A] [--flip]\n"
         "                   [--data-port P] [--timeout-ms N]\n"
         "  (A: alg1 | alg2 | alg3-doubled | alg3-improved)\n";
  return 2;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

bool parse_port(const std::string& s, std::uint16_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v > 0xffff) return false;
  out = static_cast<std::uint16_t>(v);
  return true;
}

bool parse_alg(const std::string& s, rt::ThreadAlg& out) {
  if (s == "alg1") out = rt::ThreadAlg::alg1;
  else if (s == "alg2") out = rt::ThreadAlg::alg2;
  else if (s == "alg3-doubled") out = rt::ThreadAlg::alg3_doubled;
  else if (s == "alg3-improved") out = rt::ThreadAlg::alg3_improved;
  else return false;
  return true;
}

const char* alg_name(rt::ThreadAlg a) {
  switch (a) {
    case rt::ThreadAlg::alg1: return "alg1";
    case rt::ThreadAlg::alg2: return "alg2";
    case rt::ThreadAlg::alg3_doubled: return "alg3-doubled";
    default: return "alg3-improved";
  }
}

/// Comma-separated u64 list ("6,11,3"); empty string = empty list.
bool parse_list(const std::string& s, std::vector<std::uint64_t>& out) {
  out.clear();
  std::string item;
  for (const char ch : s) {
    if (ch == ',') {
      std::uint64_t v = 0;
      if (!parse_u64(item, v)) return false;
      out.push_back(v);
      item.clear();
    } else {
      item.push_back(ch);
    }
  }
  if (item.empty()) return false;
  std::uint64_t v = 0;
  if (!parse_u64(item, v)) return false;
  out.push_back(v);
  return true;
}

void print_json_run(const net::MultiProcResult& r, std::size_t n,
                    rt::ThreadAlg alg) {
  std::cout << "{\"completed\":" << (r.completed ? "true" : "false")
            << ",\"n\":" << n << ",\"alg\":\"" << alg_name(alg) << "\""
            << ",\"pulses\":" << r.pulses << ",\"consumed\":" << r.consumed
            << ",\"probe_rounds\":" << r.probe_rounds
            << ",\"leader_count\":" << r.leader_count << ",\"leader\":";
  if (r.leader) std::cout << *r.leader;
  else std::cout << "null";
  std::cout << ",\"roles\":[";
  for (std::size_t v = 0; v < r.outcomes.size(); ++v) {
    if (v) std::cout << ",";
    std::cout << "\"" << co::to_string(r.outcomes[v].role) << "\"";
  }
  std::cout << "],\"exit_codes\":[";
  for (std::size_t v = 0; v < r.exit_codes.size(); ++v) {
    if (v) std::cout << ",";
    std::cout << r.exit_codes[v];
  }
  std::cout << "]}\n";
}

int cmd_run(const std::vector<std::string>& args) {
  std::vector<std::uint64_t> ids;
  std::vector<std::uint64_t> flip_bits;
  rt::ThreadAlg alg = rt::ThreadAlg::alg2;
  net::MultiProcOptions opt;
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_next = i + 1 < args.size();
    if (a == "--ids" && has_next) {
      if (!parse_list(args[++i], ids)) return usage();
    } else if (a == "--flips" && has_next) {
      if (!parse_list(args[++i], flip_bits)) return usage();
    } else if (a == "--alg" && has_next) {
      if (!parse_alg(args[++i], alg)) return usage();
    } else if (a == "--base-port" && has_next) {
      if (!parse_port(args[++i], opt.base_port)) return usage();
    } else if (a == "--timeout-ms" && has_next) {
      if (!parse_u64(args[++i], opt.timeout_ms)) return usage();
    } else if (a == "--json") {
      json = true;
    } else {
      return usage();
    }
  }
  if (ids.empty()) return usage();
  if (!flip_bits.empty() && flip_bits.size() != ids.size()) return usage();
  std::vector<bool> flips;
  for (const std::uint64_t b : flip_bits) {
    if (b > 1) return usage();
    flips.push_back(b == 1);
  }

  const net::MultiProcResult r = net::run_multiprocess(ids, flips, alg, opt);
  if (json) {
    print_json_run(r, ids.size(), alg);
  } else if (r.completed) {
    std::cout << "ring of " << ids.size() << " processes, " << alg_name(alg)
              << ": leader node " << (r.leader ? std::to_string(*r.leader)
                                              : std::string("<none>"))
              << ", " << r.pulses << " pulses sent, " << r.consumed
              << " consumed, quiescence proven in " << r.probe_rounds
              << " probe rounds\n";
  } else {
    std::cerr << "election failed:\n" << r.stall_dump << "\n";
  }
  return r.completed && r.leader_count == 1 ? 0 : 1;
}

int cmd_coord(const std::vector<std::string>& args) {
  net::CoordinatorOptions opt;
  std::uint64_t ring_size = 0;
  bool json = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_next = i + 1 < args.size();
    if (a == "--ring-size" && has_next) {
      if (!parse_u64(args[++i], ring_size)) return usage();
    } else if (a == "--port" && has_next) {
      if (!parse_port(args[++i], opt.port)) return usage();
    } else if (a == "--timeout-ms" && has_next) {
      if (!parse_u64(args[++i], opt.timeout_ms)) return usage();
    } else if (a == "--json") {
      json = true;
    } else {
      return usage();
    }
  }
  if (ring_size == 0 || ring_size > 0xffffffffULL) return usage();
  opt.ring_size = static_cast<std::uint32_t>(ring_size);

  net::Coordinator coord(opt);
  if (!coord.ok()) {
    std::cerr << "coordinator: " << coord.init_error() << "\n";
    return 1;
  }
  // Announced on stdout so scripts (and the multi-process test harness)
  // can pick up an ephemeral port.
  std::cout << "coordinator listening on " << coord.port() << std::endl;
  const net::CoordinatorResult r = coord.run();
  if (!r.completed) {
    std::cerr << "election failed: " << r.error << "\n";
    return 1;
  }
  std::size_t leaders = 0;
  std::size_t leader_index = 0;
  for (std::size_t v = 0; v < r.results.size(); ++v) {
    if (r.results[v].outcome.role == co::Role::leader) {
      ++leaders;
      leader_index = v;
    }
  }
  if (json) {
    std::cout << "{\"completed\":true,\"n\":" << r.results.size()
              << ",\"pulses\":" << r.total_sent
              << ",\"consumed\":" << r.total_consumed
              << ",\"probe_rounds\":" << r.probe_rounds
              << ",\"leader_count\":" << leaders << ",\"leader\":";
    if (leaders == 1) std::cout << leader_index;
    else std::cout << "null";
    std::cout << "}\n";
  } else {
    std::cout << "ring of " << r.results.size() << " nodes: "
              << (leaders == 1 ? "leader node " + std::to_string(leader_index)
                               : std::to_string(leaders) + " leaders")
              << ", " << r.total_sent << " pulses sent, " << r.total_consumed
              << " consumed, " << r.probe_rounds << " probe rounds\n";
  }
  return leaders == 1 ? 0 : 1;
}

int cmd_node(const std::vector<std::string>& args) {
  net::RingNodeConfig cfg;
  std::uint64_t index = 0;
  std::uint64_t ring_size = 0;
  bool have_index = false;
  bool have_id = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_next = i + 1 < args.size();
    if (a == "--index" && has_next) {
      if (!parse_u64(args[++i], index)) return usage();
      have_index = true;
    } else if (a == "--ring-size" && has_next) {
      if (!parse_u64(args[++i], ring_size)) return usage();
    } else if (a == "--id" && has_next) {
      if (!parse_u64(args[++i], cfg.id)) return usage();
      have_id = true;
    } else if (a == "--alg" && has_next) {
      if (!parse_alg(args[++i], cfg.alg)) return usage();
    } else if (a == "--coordinator-port" && has_next) {
      if (!parse_port(args[++i], cfg.coordinator_port)) return usage();
    } else if (a == "--data-port" && has_next) {
      if (!parse_port(args[++i], cfg.data_port)) return usage();
    } else if (a == "--timeout-ms" && has_next) {
      if (!parse_u64(args[++i], cfg.timeout_ms)) return usage();
    } else if (a == "--flip") {
      cfg.flip = true;
    } else {
      return usage();
    }
  }
  if (!have_index || !have_id || ring_size == 0 ||
      ring_size > 0xffffffffULL || index >= ring_size ||
      cfg.coordinator_port == 0) {
    return usage();
  }
  cfg.index = static_cast<std::uint32_t>(index);
  cfg.ring_size = static_cast<std::uint32_t>(ring_size);

  const net::NodeResult r = net::run_ring_node(cfg);
  if (!r.ok) {
    std::cerr << "node " << cfg.index << ": " << r.error << "\n";
    return 1;
  }
  std::cout << "node " << cfg.index << " (id " << cfg.id
            << "): " << co::to_string(r.outcome.role) << ", sent "
            << r.counters.sent << ", consumed " << r.counters.consumed
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "coord") return cmd_coord(args);
  if (cmd == "node") return cmd_node(args);
  return usage();
}
