# Empty dependencies file for bench_e7_composition.
# This may be replaced when dependencies are built.
