#include "qa/generators.hpp"

#include <algorithm>

#include "co/alg3.hpp"
#include "co/sampling.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace colex::qa {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::alg1: return "alg1";
    case Algorithm::alg2: return "alg2";
    case Algorithm::alg3_doubled: return "alg3-doubled";
    case Algorithm::alg3_improved: return "alg3-improved";
    case Algorithm::alg4: return "alg4";
  }
  return "?";
}

bool algorithm_from_string(const std::string& s, Algorithm& out) {
  for (const Algorithm a :
       {Algorithm::alg1, Algorithm::alg2, Algorithm::alg3_doubled,
        Algorithm::alg3_improved, Algorithm::alg4}) {
    if (s == to_string(a)) {
      out = a;
      return true;
    }
  }
  return false;
}

std::uint64_t FuzzCase::id_max() const {
  std::uint64_t m = 0;
  for (const auto id : ids) m = std::max(m, id);
  return m;
}

std::uint64_t FuzzCase::effective_id_max() const {
  const std::uint64_t m = id_max();
  if (m == 0) return 0;
  return alg == Algorithm::alg3_doubled ? 2 * m - 1 : m;
}

std::uint64_t FuzzCase::pulse_bound() const {
  const std::uint64_t m = effective_id_max();
  // n(2*IDmax+1) over the effective IDmax covers all three formulas: for the
  // doubled scheme 2*(2*IDmax-1)+1 = 4*IDmax-1, Proposition 15 exactly.
  return m == 0 ? 0 : ids.size() * (2 * m + 1);
}

bool operator==(const FuzzCase& a, const FuzzCase& b) {
  auto plan_eq = [](const sim::FaultPlan& x, const sim::FaultPlan& y) {
    auto profile_eq = [](const sim::ChannelFaultProfile& p,
                         const sim::ChannelFaultProfile& q) {
      return p.drop_prob == q.drop_prob &&
             p.duplicate_prob == q.duplicate_prob &&
             p.spurious_prob == q.spurious_prob;
    };
    if (x.seed != y.seed || !profile_eq(x.all_channels, y.all_channels) ||
        x.channel_overrides.size() != y.channel_overrides.size() ||
        x.script.size() != y.script.size() ||
        x.preseed_channels != y.preseed_channels) {
      return false;
    }
    for (std::size_t i = 0; i < x.channel_overrides.size(); ++i) {
      if (x.channel_overrides[i].first != y.channel_overrides[i].first ||
          !profile_eq(x.channel_overrides[i].second,
                      y.channel_overrides[i].second)) {
        return false;
      }
    }
    for (std::size_t i = 0; i < x.script.size(); ++i) {
      const auto& f = x.script[i];
      const auto& g = y.script[i];
      if (f.kind != g.kind || f.at_event != g.at_event ||
          f.channel != g.channel || f.node != g.node) {
        return false;
      }
    }
    return true;
  };
  return a.seed == b.seed && a.alg == b.alg && a.ids == b.ids &&
         a.port_flips == b.port_flips && a.schedule_seed == b.schedule_seed &&
         a.tape == b.tape && plan_eq(a.faults, b.faults) &&
         a.corrupt == b.corrupt && a.max_events == b.max_events;
}

namespace {

std::vector<std::uint64_t> sample_ids_for(Algorithm alg, std::size_t n,
                                          std::uint64_t max_id,
                                          util::Xoshiro256StarStar& rng) {
  std::vector<std::uint64_t> ids(n);
  if (alg == Algorithm::alg4) {
    // Algorithm 4: geometric bit-length sampling, clamped into [1, max_id]
    // so fuzz runs stay bounded (the distribution's heavy tail would
    // otherwise produce astronomically long elections).
    const auto sampled = co::sample_ids(n, /*c=*/1.0, rng.next());
    for (std::size_t v = 0; v < n; ++v) {
      ids[v] = 1 + (sampled[v].id - 1) % max_id;
    }
    return ids;
  }
  if (alg == Algorithm::alg1 && rng.bernoulli(0.4)) {
    // Lemma 16: Algorithm 1 tolerates arbitrary multisets, including the
    // all-equal extreme.
    if (rng.bernoulli(0.2)) {
      const std::uint64_t shared = rng.in_range(1, max_id);
      std::fill(ids.begin(), ids.end(), shared);
    } else {
      for (auto& id : ids) id = rng.in_range(1, max_id);
    }
    return ids;
  }
  // Unique IDs (required by Algorithm 2; keeps Algorithm 3's maxima unique).
  // Extremes: sometimes dense 1..n, sometimes anchored at max_id.
  const std::uint64_t hi = std::max<std::uint64_t>(n, max_id);
  if (rng.bernoulli(0.25)) {
    for (std::size_t v = 0; v < n; ++v) ids[v] = v + 1;
  } else {
    std::vector<std::uint64_t> pool;
    for (std::uint64_t id = 1; id <= hi; ++id) pool.push_back(id);
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t k = rng.below(pool.size());
      ids[v] = pool[k];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(k));
    }
    if (rng.bernoulli(0.3)) {
      // Anchor one node at the cap: IDmax extremes stress the bound math.
      ids[rng.below(n)] = hi;
    }
  }
  // Deterministic Fisher-Yates so ring position is independent of value.
  for (std::size_t i = n; i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.below(i)]);
  }
  // The anchor step can duplicate hi; repair for uniqueness.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (ids[i] == ids[j]) {
        std::uint64_t fresh = 1;
        while (std::find(ids.begin(), ids.end(), fresh) != ids.end()) ++fresh;
        ids[j] = fresh;
      }
    }
  }
  return ids;
}

sim::FaultPlan sample_fault_plan(std::size_t n, std::uint64_t horizon,
                                 util::Xoshiro256StarStar& rng) {
  sim::FaultPlan plan;
  plan.seed = rng.next();
  const std::size_t channels = 2 * n;
  const bool probabilistic = rng.bernoulli(0.4);
  const bool scripted = !probabilistic || rng.bernoulli(0.5);
  if (probabilistic) {
    // Low rates: the documented boundary experiments (E13) show anything
    // dense just livelocks Algorithm 1 immediately, which teaches nothing.
    sim::ChannelFaultProfile p;
    const int which = static_cast<int>(rng.below(3));
    const double rate = 0.002 + 0.01 * rng.uniform01();
    if (which == 0) p.drop_prob = rate;
    if (which == 1) p.duplicate_prob = rate;
    if (which == 2) p.spurious_prob = rate;
    if (rng.bernoulli(0.5)) {
      plan.all_channels = p;
    } else {
      plan.channel_overrides.emplace_back(rng.below(channels), p);
    }
  }
  if (scripted) {
    const std::size_t count = 1 + rng.below(4);
    std::uint64_t at = rng.below(horizon / 4 + 1);
    bool crashed = false;
    sim::NodeId crashed_node = 0;
    for (std::size_t i = 0; i < count; ++i) {
      sim::ScriptedFault f;
      f.at_event = at;
      at += rng.below(horizon / 4 + 1);
      const std::size_t kind = rng.below(crashed ? 5u : 4u);
      switch (kind) {
        case 0: f.kind = sim::FaultKind::drop; break;
        case 1: f.kind = sim::FaultKind::duplicate; break;
        case 2: f.kind = sim::FaultKind::spurious; break;
        case 3: f.kind = sim::FaultKind::crash; break;
        case 4: f.kind = sim::FaultKind::recover; break;
      }
      if (f.kind == sim::FaultKind::crash) {
        f.node = rng.below(n);
        crashed = true;
        crashed_node = f.node;
      } else if (f.kind == sim::FaultKind::recover) {
        f.node = crashed_node;  // wrong-state requests are silent no-ops
      } else {
        f.channel = rng.below(channels);
      }
      plan.script.push_back(f);
    }
  }
  if (rng.bernoulli(0.2)) {
    plan.preseed_channels.emplace_back(rng.below(channels),
                                       1 + rng.below(3));
  }
  // The injector rejects invalid plans outright, so a generator bug here
  // (unsorted script, orphaned recover) must fail at sampling time with a
  // clear blame line, not deep inside a fuzz campaign.
  COLEX_ENSURES(plan.validate().empty());
  return plan;
}

CorruptSpec sample_corrupt(std::size_t n, std::uint64_t max_id,
                           util::Xoshiro256StarStar& rng) {
  CorruptSpec spec;
  spec.active = true;
  spec.node = rng.below(n);
  for (auto& c : spec.counters) {
    c = rng.bernoulli(0.5) ? 0 : rng.in_range(0, max_id + 1);
  }
  return spec;
}

}  // namespace

FuzzCase generate_case(std::uint64_t seed, const GeneratorOptions& options) {
  COLEX_EXPECTS(options.min_n >= 1 && options.min_n <= options.max_n);
  COLEX_EXPECTS(options.max_id >= options.max_n);
  // Decorrelate from the raw seed stream (consecutive campaign seeds must
  // not produce correlated cases).
  util::Xoshiro256StarStar rng(seed * 0x9E3779B97F4A7C15ULL + 0xC0FFEE);
  FuzzCase c;
  c.seed = seed;
  c.max_events = options.max_events;

  static constexpr Algorithm kAll[] = {
      Algorithm::alg1, Algorithm::alg2, Algorithm::alg3_doubled,
      Algorithm::alg3_improved, Algorithm::alg4};
  if (options.algorithms.empty()) {
    c.alg = kAll[rng.below(std::size(kAll))];
  } else {
    c.alg = options.algorithms[rng.below(options.algorithms.size())];
  }

  const std::size_t n =
      options.min_n + rng.below(options.max_n - options.min_n + 1);
  c.ids = sample_ids_for(c.alg, n, options.max_id, rng);

  const bool non_oriented =
      c.alg == Algorithm::alg3_doubled || c.alg == Algorithm::alg3_improved ||
      c.alg == Algorithm::alg4;
  if (non_oriented && !rng.bernoulli(0.2)) {
    c.port_flips.resize(n);
    for (std::size_t v = 0; v < n; ++v) c.port_flips[v] = rng.bernoulli(0.5);
  }

  c.schedule_seed = rng.next();

  if (options.fault_fraction > 0.0 && rng.bernoulli(options.fault_fraction)) {
    // Horizon heuristic: scripted fault offsets land inside the fault-free
    // event count, which is ~2x the pulse bound (starts + deliveries).
    const std::uint64_t horizon = std::max<std::uint64_t>(8, c.pulse_bound());
    c.faults = sample_fault_plan(n, horizon, rng);
    if (rng.bernoulli(0.25)) {
      c.corrupt = sample_corrupt(n, options.max_id, rng);
    }
  }
  return c;
}

std::unique_ptr<sim::Scheduler> make_case_scheduler(const FuzzCase& c) {
  util::Xoshiro256StarStar rng(c.schedule_seed);
  auto make_walk = [&rng]() -> std::unique_ptr<sim::Scheduler> {
    const std::uint64_t walk_seed = rng.next();
    sim::WalkScheduler::Profile p;
    p.base = 1 + static_cast<std::uint32_t>(rng.below(4));
    p.lifo = static_cast<std::uint32_t>(rng.below(12));
    p.fifo = static_cast<std::uint32_t>(rng.below(12));
    p.stick = static_cast<std::uint32_t>(rng.below(16));
    if (rng.bernoulli(0.5)) {
      p.cw = static_cast<std::uint32_t>(rng.below(8));
    } else {
      p.ccw = static_cast<std::uint32_t>(rng.below(8));
    }
    return std::make_unique<sim::WalkScheduler>(walk_seed, p);
  };
  if (rng.bernoulli(0.6)) return make_walk();
  // Swarm: a few biased walks plus one named adversary from the standard
  // suite, with control handed around in random bursts.
  std::vector<std::unique_ptr<sim::Scheduler>> parts;
  const std::size_t walks = 1 + rng.below(3);
  for (std::size_t i = 0; i < walks; ++i) parts.push_back(make_walk());
  auto suite = sim::standard_schedulers(1, rng.next());
  parts.push_back(std::move(suite[rng.below(suite.size())].scheduler));
  return std::make_unique<sim::MixScheduler>(rng.next(), std::move(parts));
}

}  // namespace colex::qa
