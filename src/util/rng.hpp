// Deterministic, seedable random number generation.
//
// The simulator and the randomized algorithms (Algorithm 4, Itai-Rodeh) must
// be exactly reproducible from a seed, so we implement small, well-known
// generators (SplitMix64 for seeding, xoshiro256** for streams) instead of
// relying on the implementation-defined std::mt19937_64 jump behaviour.
#pragma once

#include <array>
#include <cstdint>

namespace colex::util {

/// SplitMix64 (Steele, Lea, Flood 2014). Used to expand a single 64-bit seed
/// into the larger state of xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman, Vigna 2018). All-purpose 64-bit generator with
/// 256-bit state; passes BigCrush. Satisfies UniformRandomBitGenerator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  /// Uses Lemire-style rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) { return uniform01() < p; }

  /// Number of i.i.d. Bernoulli(q) trials up to and including the first
  /// success; support {1, 2, ...}. This is the Geo(q) convention used by the
  /// paper's Algorithm 4: P(X > x) = (1-q)^x.
  std::uint64_t geometric_trials(double q);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace colex::util
