file(REMOVE_RECURSE
  "libcolex_colib.a"
)
