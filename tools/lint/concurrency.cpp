#include "lint/concurrency.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace colex::lint {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

void add(std::vector<Finding>& out, const char* rule, const std::string& file,
         int line, std::string message) {
  out.push_back(Finding{rule, file, line, std::move(message), "concurrency"});
}

// --- atomic member registry (shared by T001 / T003) ----------------------

struct AtomicMember {
  std::string cls;
  std::string name;
  std::string file;
  std::string dir;  // directory of the declaring file
  int line = 0;
};

/// True when token `t` of file `fi` lies inside any function body — used to
/// keep function-local atomics (e.g. the parallel_for cursor) out of the
/// member registry: a local's synchronization story is visible in one
/// function and T001's project-wide pairing would only produce noise there.
bool inside_function(const FileIndex& index, std::size_t t) {
  for (const FunctionDef& fn : index.functions) {
    if (t >= fn.body_begin && t < fn.body_end) return true;
  }
  return false;
}

/// True when token `t` lies inside a class body strictly nested within
/// `cls`. Nested-struct members belong to the inner class — FlightRing's
/// Slot atomics are Slot's seqlock, not part of FlightRing's own state —
/// and the inner class's own iteration records them.
bool inside_nested_class(const FileIndex& index, const ClassDef& cls,
                         std::size_t t) {
  for (const ClassDef& inner : index.classes) {
    if (&inner == &cls) continue;
    if (inner.body_begin > cls.body_begin && inner.body_end <= cls.body_end &&
        t >= inner.body_begin && t < inner.body_end) {
      return true;
    }
  }
  return false;
}

std::vector<AtomicMember> collect_atomic_members(
    const std::vector<SourceFile>& files, const ProjectIndex& project) {
  std::vector<AtomicMember> members;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const auto& toks = files[fi].tokens;
    const FileIndex& index = project.files[fi];
    for (const ClassDef& cls : index.classes) {
      if (cls.name.empty() || cls.body_end <= cls.body_begin) continue;
      for (std::size_t i = cls.body_begin;
           i + 1 < cls.body_end && i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Tok::identifier || toks[i].text != "atomic")
          continue;
        if (toks[i + 1].text != "<") continue;
        if (inside_function(index, i)) continue;
        if (inside_nested_class(index, cls, i)) continue;
        const std::size_t close = match_forward_tok(toks, i + 1, '<', '>');
        if (close == kNone || close >= cls.body_end) continue;
        std::size_t j = close + 1;
        while (j < cls.body_end && toks[j].kind == Tok::punct &&
               (toks[j].text == "*" || toks[j].text == "&")) {
          ++j;
        }
        if (j + 1 >= cls.body_end || toks[j].kind != Tok::identifier) continue;
        const Token& next = toks[j + 1];
        if (next.kind != Tok::punct ||
            (next.text != ";" && next.text != "=" && next.text != "{" &&
             next.text != "," && next.text != "[")) {
          continue;
        }
        members.push_back(AtomicMember{cls.name, toks[j].text, files[fi].path,
                                       dir_of(files[fi].path),
                                       toks[j].line});
      }
    }
  }
  return members;
}

// --- T001: unpaired memory orders ----------------------------------------

enum class Order { relaxed, consume, acquire, release, acq_rel, seq_cst };

bool order_acquires(Order o) {
  return o == Order::acquire || o == Order::consume || o == Order::acq_rel ||
         o == Order::seq_cst;
}
bool order_releases(Order o) {
  return o == Order::release || o == Order::acq_rel || o == Order::seq_cst;
}

/// Memory orders named inside a call's parens; empty means the seq_cst
/// default. Accepts both `std::memory_order_release` and
/// `std::memory_order::release` spellings.
std::vector<Order> orders_in_call(const std::vector<Token>& toks,
                                  std::size_t open, std::size_t close) {
  static const std::map<std::string, Order> kNames = {
      {"relaxed", Order::relaxed}, {"consume", Order::consume},
      {"acquire", Order::acquire}, {"release", Order::release},
      {"acq_rel", Order::acq_rel}, {"seq_cst", Order::seq_cst},
  };
  std::vector<Order> out;
  for (std::size_t j = open + 1; j < close && j < toks.size(); ++j) {
    if (toks[j].kind != Tok::identifier) continue;
    const std::string& id = toks[j].text;
    const std::string prefix = "memory_order_";
    if (id.rfind(prefix, 0) == 0) {
      const auto it = kNames.find(id.substr(prefix.size()));
      if (it != kNames.end()) out.push_back(it->second);
    } else if (id == "memory_order" && j + 3 < close &&
               toks[j + 1].text == ":" && toks[j + 2].text == ":") {
      const auto it = kNames.find(toks[j + 3].text);
      if (it != kNames.end()) out.push_back(it->second);
    }
  }
  return out;
}

struct MemberOrderUses {
  struct Site {
    std::string file;
    int line = 0;
  };
  std::vector<Site> release_stores;  // plain store(..., release)
  std::vector<Site> acquire_loads;   // plain load(acquire|consume)
  bool any_sync_store = false;  // store/RMW with release|acq_rel|seq_cst
  bool any_sync_load = false;   // load/RMW with acquire|consume|...|seq_cst
};

bool is_rmw_name(const std::string& s) {
  return s == "exchange" || s == "fetch_add" || s == "fetch_sub" ||
         s == "fetch_and" || s == "fetch_or" || s == "fetch_xor" ||
         s == "compare_exchange_weak" || s == "compare_exchange_strong";
}

void rule_t001(const std::vector<SourceFile>& files,
               const std::vector<AtomicMember>& members,
               std::vector<Finding>& out) {
  std::set<std::string> names;
  for (const AtomicMember& m : members) names.insert(m.name);
  if (names.empty()) return;

  std::map<std::string, MemberOrderUses> uses;
  for (const SourceFile& f : files) {
    const auto& toks = f.tokens;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].kind != Tok::identifier || names.count(toks[i].text) == 0)
        continue;
      if (toks[i + 1].text != "." || toks[i + 2].kind != Tok::identifier ||
          toks[i + 3].text != "(") {
        continue;
      }
      const std::string& op = toks[i + 2].text;
      const bool is_store = op == "store";
      const bool is_load = op == "load";
      const bool is_rmw = is_rmw_name(op);
      if (!is_store && !is_load && !is_rmw) continue;
      const std::size_t close = match_forward_tok(toks, i + 3, '(', ')');
      if (close == kNone) continue;
      std::vector<Order> orders = orders_in_call(toks, i + 3, close);
      if (orders.empty()) orders.push_back(Order::seq_cst);
      MemberOrderUses& u = uses[toks[i].text];
      for (const Order o : orders) {
        if (is_store || is_rmw) u.any_sync_store |= order_releases(o);
        if (is_load || is_rmw) u.any_sync_load |= order_acquires(o);
        if (is_store && o == Order::release) {
          u.release_stores.push_back({f.path, toks[i].line});
        }
        if (is_load && (o == Order::acquire || o == Order::consume)) {
          u.acquire_loads.push_back({f.path, toks[i].line});
        }
      }
    }
  }

  for (const auto& [name, u] : uses) {
    if (!u.any_sync_load) {
      for (const auto& site : u.release_stores) {
        add(out, "T001", site.file, site.line,
            "release store to atomic member '" + name +
                "' is never observed by an acquire/seq_cst load anywhere in "
                "the tree: nothing synchronizes-with it, so the data it "
                "publishes may be read unordered");
      }
    }
    if (!u.any_sync_store) {
      for (const auto& site : u.acquire_loads) {
        add(out, "T001", site.file, site.line,
            "acquire load of atomic member '" + name +
                "' has no release/seq_cst store to pair with anywhere in "
                "the tree: the acquire cannot order anything and the guarded "
                "data may be stale");
      }
    }
  }
}

// --- T002: blocking calls reachable from coroutine bodies ----------------

bool body_contains(const std::vector<Token>& toks, const FunctionDef& fn,
                   const char* word) {
  for (std::size_t i = fn.body_begin; i < fn.body_end && i < toks.size();
       ++i) {
    if (toks[i].kind == Tok::identifier && toks[i].text == word) return true;
  }
  return false;
}

/// Human-readable symbol name for diagnostics: `Owner::name` / `name` /
/// `<lambda>`.
std::string symbol_label(const FunctionSymbol& sym) {
  if (sym.name.empty()) return "<lambda>";
  if (sym.owner.empty() || sym.owner == sym.name) return sym.name;
  return sym.owner + "::" + sym.name;
}

void rule_t002(const std::vector<SourceFile>& files,
               const ProjectIndex& project, const SymbolTable& symbols,
               const CallGraph& graph, std::vector<Finding>& out) {
  // Roots: every function whose body uses a coroutine keyword — the
  // transcriptions in src/runtime/blocking_algs.hpp (and any fixture
  // mirror), wherever they live.
  std::vector<std::size_t> roots;
  for (std::size_t s = 0; s < symbols.symbols.size(); ++s) {
    const FunctionSymbol& sym = symbols.symbols[s];
    const FunctionDef& fn = project.files[sym.file].functions[sym.fn];
    const auto& toks = files[sym.file].tokens;
    if (body_contains(toks, fn, "co_await") ||
        body_contains(toks, fn, "co_yield") ||
        body_contains(toks, fn, "co_return")) {
      roots.push_back(s);
    }
  }
  if (roots.empty()) return;

  // Expansion is confined to functions defined under src/coro: that is the
  // executor the coroutine bodies actually run on. The blocking substrates
  // share the same call-site names (io.send -> NodeIo::send blocks by
  // design), so an unconfined name-resolved BFS would condemn them all.
  std::vector<std::size_t> origin;
  const std::vector<bool> reached = reachable_from(
      graph, symbols, roots,
      [&files](const FunctionSymbol& sym) {
        return files[sym.file].path.find("src/coro/") != std::string::npos;
      },
      &origin);

  static const std::set<std::string> kGuardSinks = {
      "lock_guard", "unique_lock", "scoped_lock"};
  static const std::set<std::string> kMemberSinks = {
      "lock", "wait", "wait_for", "wait_until", "join"};
  static const std::set<std::string> kFreeSinks = {
      "sleep_for", "sleep_until", "send_all", "recv_byte"};

  std::set<std::pair<std::string, int>> seen;  // (file, line) dedup
  for (std::size_t s = 0; s < symbols.symbols.size(); ++s) {
    if (!reached[s]) continue;
    const FunctionSymbol& sym = symbols.symbols[s];
    const FunctionDef& fn = project.files[sym.file].functions[sym.fn];
    const SourceFile& f = files[sym.file];
    const auto& toks = f.tokens;
    const std::string root_label = symbol_label(symbols.symbols[origin[s]]);
    for (std::size_t i = fn.body_begin; i < fn.body_end && i < toks.size();
         ++i) {
      if (toks[i].kind != Tok::identifier) continue;
      const std::string& id = toks[i].text;
      std::string sink;
      if (kGuardSinks.count(id) != 0) {
        sink = "std::" + id;
      } else if (kMemberSinks.count(id) != 0 && i > 0 && i + 1 < toks.size() &&
                 toks[i + 1].text == "(" &&
                 (toks[i - 1].text == "." || toks[i - 1].text == ">")) {
        sink = "." + id + "()";
      } else if (kFreeSinks.count(id) != 0 && i + 1 < toks.size() &&
                 toks[i + 1].text == "(") {
        sink = id + "()";
      } else {
        continue;
      }
      if (!seen.insert({f.path, toks[i].line}).second) continue;
      add(out, "T002", f.path, toks[i].line,
          "blocking call " + sink + " in '" + symbol_label(sym) +
              "' is reachable from coroutine '" + root_label +
              "': a worker thread that blocks here stalls every parked node "
              "it should be resuming — use the executor's nonblocking "
              "wake/park protocol instead");
    }
  }
}

// --- T003: seqlock writer protocol shape ---------------------------------

void rule_t003(const std::vector<SourceFile>& files,
               const ProjectIndex& project,
               const std::vector<AtomicMember>& members,
               std::vector<Finding>& out) {
  // Seqlock classes: those declaring an atomic member whose name contains
  // "version". Its other atomic members are the payload the odd/even
  // version protocol must bracket.
  struct Seqlock {
    std::string version;
    std::set<std::string> payload;
    std::string dir;
  };
  std::map<std::string, Seqlock> locks;  // class -> shape
  for (const AtomicMember& m : members) {
    if (m.name.find("version") != std::string::npos) {
      locks[m.cls].version = m.name;
      locks[m.cls].dir = m.dir;
    }
  }
  if (locks.empty()) return;
  for (const AtomicMember& m : members) {
    const auto it = locks.find(m.cls);
    if (it != locks.end() && m.name != it->second.version) {
      it->second.payload.insert(m.name);
    }
  }

  for (const auto& [cls, lock] : locks) {
    if (lock.payload.empty()) continue;
    // Writers live next to the class (flight.hpp declares, flight.cpp
    // writes); confining the scan to the declaring directory keeps
    // generically-named payload members (`seq`, `what`) from matching
    // unrelated code across the tree.
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
      if (dir_of(files[fi].path) != lock.dir) continue;
      const auto& toks = files[fi].tokens;
      for (const FunctionDef& fn : project.files[fi].functions) {
        if (fn.body_end <= fn.body_begin) continue;
        std::vector<std::size_t> vstores, pstores;
        for (std::size_t i = fn.body_begin;
             i + 3 < fn.body_end && i + 3 < toks.size(); ++i) {
          if (toks[i].kind != Tok::identifier) continue;
          if (toks[i + 1].text != "." || toks[i + 2].text != "store" ||
              toks[i + 3].text != "(") {
            continue;
          }
          if (toks[i].text == lock.version) vstores.push_back(i);
          else if (lock.payload.count(toks[i].text) != 0) pstores.push_back(i);
        }
        if (pstores.empty()) continue;
        if (vstores.size() < 2) {
          add(out, "T003", files[fi].path, toks[pstores.front()].line,
              "seqlock payload of '" + cls + "' is stored without the "
              "odd/even '" + lock.version + "' bracket: readers validate "
              "version-before == version-after, so an unbracketed write can "
              "be observed torn");
        } else if (vstores.front() > pstores.front() ||
                   vstores.back() < pstores.back()) {
          add(out, "T003", files[fi].path, fn.line,
              "seqlock writer for '" + cls + "' does not bracket every "
              "payload store between its '" + lock.version + "' stores: the "
              "odd/even protocol requires version++ before the first payload "
              "store and version++ after the last");
        }
      }
    }
  }
}

// --- T004: Transport / PulsePort structural conformance ------------------

void rule_t004(const std::vector<SourceFile>& files,
               const ProjectIndex& project, const SymbolTable& symbols,
               std::vector<Finding>& out) {
  // class -> method name -> declared parameter counts (across the tree, so
  // out-of-line definitions count).
  std::map<std::string, std::map<std::string, std::set<int>>> methods;
  for (const FunctionSymbol& sym : symbols.symbols) {
    if (sym.owner.empty() || sym.name.empty()) continue;
    methods[sym.owner][sym.name].insert(sym.param_count);
  }
  // Anchor each named class at its first definition.
  struct Anchor {
    std::string file;
    int line = 0;
  };
  std::map<std::string, Anchor> anchors;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    for (const ClassDef& cls : project.files[fi].classes) {
      if (cls.name.empty() || cls.body_end <= cls.body_begin) continue;
      anchors.emplace(cls.name, Anchor{files[fi].path, cls.line});
    }
  }

  using Spec = std::pair<const char*, int>;  // method name, param count
  static const Spec kTransport[] = {
      {"recv", 1}, {"send", 1}, {"wait", 0}, {"stopped", 0}, {"shutdown", 0}};
  static const Spec kPulsePort[] = {{"recv", 1}, {"send", 1}, {"wait_any", 0}};

  for (const auto& [cls, anchor] : anchors) {
    const auto mit = methods.find(cls);
    if (mit == methods.end()) continue;
    auto has = [&mit](const Spec& spec) {
      const auto nit = mit->second.find(spec.first);
      return nit != mit->second.end() && nit->second.count(spec.second) != 0;
    };
    auto missing_list = [&has](const Spec* specs, std::size_t n) {
      std::string miss;
      for (std::size_t k = 0; k < n; ++k) {
        if (has(specs[k])) continue;
        if (!miss.empty()) miss += ", ";
        miss += specs[k].first;
        miss += specs[k].second == 0 ? "()" : "(port)";
      }
      return miss;
    };
    int transport_hits = 0;
    for (const Spec& spec : kTransport) transport_hits += has(spec) ? 1 : 0;
    if (transport_hits >= 3 && transport_hits < 5) {
      add(out, "T004", anchor.file, anchor.line,
          "'" + cls + "' implements " + std::to_string(transport_hits) +
              " of 5 rt::Transport methods (missing: " +
              missing_list(kTransport, 5) +
              "): a drifted backend surface only fails when a template "
              "instantiates it, which for a stub backend may be never — "
              "complete the surface or rename the methods");
      continue;  // one structural finding per class is enough
    }
    int pulse_hits = 0;
    for (const Spec& spec : kPulsePort) pulse_hits += has(spec) ? 1 : 0;
    if (has({"wait_any", 0}) && pulse_hits < 3) {
      add(out, "T004", anchor.file, anchor.line,
          "'" + cls + "' has wait_any() but not the full rt::PulsePort "
          "surface (missing: " + missing_list(kPulsePort, 3) +
              "): the coroutine transcriptions require all three — complete "
              "the port or drop wait_any");
    }
  }
}

}  // namespace

void run_concurrency_rules(const std::vector<SourceFile>& files,
                           const ProjectIndex& project,
                           const SymbolTable& symbols, const CallGraph& graph,
                           std::vector<Finding>& out) {
  const std::vector<AtomicMember> members =
      collect_atomic_members(files, project);
  rule_t001(files, members, out);
  rule_t002(files, project, symbols, graph, out);
  rule_t003(files, project, members, out);
  rule_t004(files, project, symbols, out);
}

}  // namespace colex::lint
