# Empty dependencies file for colexctl.
# This may be replaced when dependencies are built.
