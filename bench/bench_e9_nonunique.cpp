// E9 — Lemmas 16/17 and Proposition 19: Algorithm 1 with non-unique IDs
// still stabilizes with every node at exactly IDmax pulses (the max-ID
// *set* jointly crosses last); Algorithm 3's improved scheme tolerates
// duplicate non-maximal IDs; and the Prop. 19 resampling rule leaves all
// nodes holding distinct IDs at quiescence with high probability.
#include <iostream>
#include <set>

#include "bench_common.hpp"
#include "co/election.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

int main() {
  using namespace colex;
  bench::banner(
      "E9  Non-unique IDs and ID resampling (bench_e9_nonunique)",
      "Lemma 16: Corollary 13 survives duplicate IDs (all max-holders end "
      "Leader); Theorem 2 needs only the maximum unique; Prop. 19: the "
      "resampling rule yields all-distinct IDs w.h.p.");
  bench::WallTimer total;
  bench::JsonReport report("E9", "non-unique IDs and ID resampling");

  bool all_ok = true;

  // Part 1: Algorithm 1 under duplicate-ID multisets (Lemma 16/17).
  util::Table part1({"multiset", "n", "IDmax", "#max holders", "leaders",
                     "pulses", "n*IDmax", "exact"});
  struct Case {
    const char* name;
    std::vector<std::uint64_t> ids;
  };
  const Case cases[] = {
      {"all-equal", {4, 4, 4, 4, 4}},
      {"two-maxima", {7, 3, 7, 2, 5}},
      {"max-block", {9, 9, 9, 1, 2, 3}},
      {"alternating", {5, 2, 5, 2, 5, 2}},
      {"unique-max-dups-below", {3, 7, 3, 3, 5, 5}},
  };
  for (const auto& test_case : cases) {
    const auto& ids = test_case.ids;
    std::uint64_t id_max = 0;
    std::size_t holders = 0;
    for (const auto id : ids) id_max = std::max(id_max, id);
    for (const auto id : ids) holders += id == id_max ? 1 : 0;

    bool exact = true;
    std::size_t leaders = 0;
    for (auto& named : sim::standard_schedulers(3)) {
      const auto result =
          co::elect_oriented_stabilizing(ids, *named.scheduler);
      leaders = result.leader_count;
      exact = exact && result.quiescent &&
              result.pulses == ids.size() * id_max &&
              result.leader_count == holders;
      for (const auto& node : result.nodes) {
        exact = exact && node.rho_cw == id_max && node.sigma_cw == id_max;
      }
    }
    all_ok = all_ok && exact;
    part1.add_row(
        {test_case.name, util::Table::num(ids.size()),
         util::Table::num(id_max), util::Table::num(holders),
         util::Table::num(leaders),
         util::Table::num(ids.size() * id_max),
         util::Table::num(ids.size() * id_max), exact ? "yes" : "NO"});
  }
  part1.print(std::cout);

  // Part 2: Algorithm 3 improved scheme with duplicates below a unique max,
  // across exhaustive scrambles (n <= 6).
  std::cout << "\nAlgorithm 3 (improved) with duplicate non-maximal IDs, "
               "all 2^n scrambles:\n";
  const std::vector<std::uint64_t> dup_ids{3, 7, 3, 5, 5};
  bool scramble_ok = true;
  std::size_t scramble_count = 0;
  for (const auto& flips : util::all_flip_masks(dup_ids.size())) {
    sim::GlobalFifoScheduler sched;
    co::Alg3NonOriented::Options options;
    const auto result = co::elect_and_orient(dup_ids, flips, options, sched);
    scramble_ok = scramble_ok && result.valid_election() &&
                  dup_ids[*result.leader] == 7 &&
                  result.orientation_consistent &&
                  result.pulses ==
                      co::theorem1_pulses(dup_ids.size(), 7);
    ++scramble_count;
  }
  std::cout << "  " << scramble_count << " scrambles, all correct: "
            << (scramble_ok ? "yes" : "NO") << "\n";
  all_ok = all_ok && scramble_ok;

  // Part 3: Proposition 19 resampling distinctness rate.
  std::cout << "\nProposition 19 resampling (ids {2,2,2,2,2,2,2,1000}):\n";
  constexpr int kRuns = 200;
  int distinct_runs = 0;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    const std::vector<std::uint64_t> ids{2, 2, 2, 2, 2, 2, 2, 1000};
    co::Alg3NonOriented::Options options;
    options.resample_seed = seed;
    sim::RandomScheduler sched(seed);
    const auto result = co::elect_and_orient(ids, {}, options, sched);
    std::set<std::uint64_t> seen;
    for (const auto& node : result.nodes) seen.insert(node.id);
    if (seen.size() == ids.size()) ++distinct_runs;
  }
  const double rate = static_cast<double>(distinct_runs) / kRuns;
  std::cout << "  all-distinct at quiescence: " << distinct_runs << "/"
            << kRuns << " (" << util::Table::fixed(100 * rate, 1) << "%)\n";
  const bool prop19_ok = rate > 0.9;
  all_ok = all_ok && prop19_ok;

  report.root().set("all_ok", all_ok);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "duplicate IDs behave exactly as Lemmas 16/17 predict, and "
                 "Prop. 19 resampling delivers distinct IDs w.h.p.");
  return all_ok ? 0 : 1;
}
