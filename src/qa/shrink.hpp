// Counterexample shrinking: delta-debugging (ddmin) over a failing
// FuzzCase, anchored to the property that originally failed.
//
// The pipeline, in order:
//   1. pin the schedule — the recorded tape replaces the generated
//      scheduler, so every candidate below is a deterministic replay (a
//      tape entry naming a channel that is no longer pending falls back to
//      oldest-first delivery, which keeps even structurally mutated
//      candidates deterministic);
//   2. shrink the fault plan — drop the corruption spec, zero the
//      probabilistic profiles, ddmin the scripted one-shots and the
//      preseeded channels (subsets of an at_event-sorted script stay
//      sorted, which the injector requires);
//   3. ddmin the schedule tape itself (the "schedule prefix" reduction);
//   4. shrink the configuration — remove ring nodes one at a time
//      (dropping fault references that fall off the smaller ring) and
//      rank-compact the ID assignment toward 1..k;
//   5. repeat 2-4 until a full pass makes no progress or the attempt
//      budget runs out.
//
// A candidate is accepted iff check_case reports the SAME failed property,
// so minimization never wanders from the defect being reproduced. The
// result is locally minimal with respect to these operators, which is the
// ddmin guarantee — not a global minimum.
#pragma once

#include <cstdint>

#include "qa/generators.hpp"
#include "qa/properties.hpp"

namespace colex::qa {

struct ShrinkStats {
  std::size_t attempts = 0;      ///< candidate executions performed
  std::size_t improvements = 0;  ///< candidates accepted
};

struct ShrinkOptions {
  std::size_t max_attempts = 2000;  ///< execution budget for candidates
};

struct ShrinkResult {
  FuzzCase minimal;
  CaseResult result;  ///< check_case outcome on `minimal`
  ShrinkStats stats;
};

/// Minimizes `failing`, whose check_case outcome is `original` (must carry
/// a non-empty failed_property). `opts` must be the property options the
/// failure was found under — the predicate re-checks candidates with them.
ShrinkResult shrink_case(const FuzzCase& failing, const CaseResult& original,
                         const PropertyOptions& opts,
                         const ShrinkOptions& shrink_opts = {});

}  // namespace colex::qa
