// colex-fuzz: property-based schedule/fault fuzzing front-end over src/qa.
//
//   colex-fuzz run [options]            seeded campaign: generate -> check ->
//                                       shrink; writes repro/trace artifacts
//   colex-fuzz replay <repro.jsonl>     re-execute a colex-repro-v1 file and
//                                       verify the recorded verdict recurs
//   colex-fuzz --replay <repro.jsonl>   alias for `replay`
//
// run options:
//   --seeds N           cases to run (default 100)
//   --seed-start S      first seed (default 1)
//   --algs a,b,...      restrict algorithms (alg1,alg2,alg3_doubled,
//                       alg3_improved,alg4); default all
//   --min-n N --max-n N ring-size range (defaults 1..6)
//   --max-id M          ID cap (default 12)
//   --fault-fraction F  fraction of cases with a fault plan (default 0)
//   --max-events N      per-case livelock guard (default 50000)
//   --planted           enable the planted off-by-one bound property
//   --no-shrink         keep the raw counterexample
//   --max-failures K    stop after K counterexamples (default 1; 0 = all)
//   --repro-out FILE    write the minimal counterexample as colex-repro-v1
//   --trace-out FILE    write the minimal counterexample's trace as
//                       colex-trace-v1 (loadable by colex-inspect)
//   --json              machine-readable campaign summary on stdout
//
// Exit status: run -> 0 no counterexample, 1 counterexample found, 2 usage.
// replay -> 0 recorded verdict reproduced exactly, 1 diverged, 2 usage/load
// error. "Reproduced" means check_case reports the same failed property the
// file recorded (or passes, for a repro of a passing case).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "qa/fuzzer.hpp"
#include "qa/repro.hpp"

namespace {

using namespace colex;

int usage() {
  std::cerr << "usage:\n"
               "  colex-fuzz run [--seeds N] [--seed-start S] [--algs a,b]\n"
               "             [--min-n N] [--max-n N] [--max-id M]\n"
               "             [--fault-fraction F] [--max-events N]\n"
               "             [--planted] [--no-shrink] [--max-failures K]\n"
               "             [--repro-out FILE] [--trace-out FILE] [--json]\n"
               "  colex-fuzz replay <repro.jsonl> [--trace-out FILE]\n";
  return 2;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  out = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

bool parse_algs(const std::string& s, std::vector<qa::Algorithm>& out) {
  std::size_t begin = 0;
  while (begin <= s.size()) {
    std::size_t comma = s.find(',', begin);
    if (comma == std::string::npos) comma = s.size();
    qa::Algorithm a{};
    if (!qa::algorithm_from_string(s.substr(begin, comma - begin), a)) {
      return false;
    }
    out.push_back(a);
    begin = comma + 1;
  }
  return !out.empty();
}

bool write_trace_file(const std::string& path, const qa::FuzzCase& c,
                      const std::vector<sim::TraceEvent>& trace) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "colex-fuzz: cannot write " << path << "\n";
    return false;
  }
  obs::write_jsonl(out, trace, qa::trace_meta_for(c));
  return out.good();
}

void print_case(std::ostream& os, const char* label, const qa::FuzzCase& c) {
  os << label << ": alg=" << qa::to_string(c.alg) << " n=" << c.n() << " ids=[";
  for (std::size_t v = 0; v < c.ids.size(); ++v) {
    if (v) os << ',';
    os << c.ids[v];
  }
  os << "] tape=" << c.tape.size() << " faults="
     << (c.clean() ? "none" : "plan") << "\n";
}

int cmd_run(const std::vector<std::string>& args) {
  qa::CampaignOptions options;
  options.cases = 100;
  std::string repro_out;
  std::string trace_out;
  bool json = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const bool has_value = i + 1 < args.size();
    std::uint64_t u = 0;
    if (a == "--planted") {
      options.properties.planted_bound_bug = true;
    } else if (a == "--no-shrink") {
      options.shrink = false;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--seeds" && has_value && parse_u64(args[++i], u)) {
      options.cases = static_cast<std::size_t>(u);
    } else if (a == "--seed-start" && has_value && parse_u64(args[++i], u)) {
      options.seed_start = u;
    } else if (a == "--min-n" && has_value && parse_u64(args[++i], u)) {
      options.generator.min_n = static_cast<std::size_t>(u);
    } else if (a == "--max-n" && has_value && parse_u64(args[++i], u)) {
      options.generator.max_n = static_cast<std::size_t>(u);
    } else if (a == "--max-id" && has_value && parse_u64(args[++i], u)) {
      options.generator.max_id = u;
    } else if (a == "--max-events" && has_value && parse_u64(args[++i], u)) {
      options.generator.max_events = u;
    } else if (a == "--max-failures" && has_value && parse_u64(args[++i], u)) {
      options.max_failures = static_cast<std::size_t>(u);
    } else if (a == "--algs" && has_value) {
      if (!parse_algs(args[++i], options.generator.algorithms)) {
        std::cerr << "colex-fuzz: bad --algs list\n";
        return 2;
      }
    } else if (a == "--fault-fraction" && has_value) {
      char* end = nullptr;
      options.generator.fault_fraction = std::strtod(args[++i].c_str(), &end);
      if (end == args[i].c_str() || options.generator.fault_fraction < 0.0 ||
          options.generator.fault_fraction > 1.0) {
        std::cerr << "colex-fuzz: bad --fault-fraction\n";
        return 2;
      }
    } else if (a == "--repro-out" && has_value) {
      repro_out = args[++i];
    } else if (a == "--trace-out" && has_value) {
      trace_out = args[++i];
    } else {
      return usage();
    }
  }
  if (options.generator.min_n == 0 ||
      options.generator.min_n > options.generator.max_n) {
    std::cerr << "colex-fuzz: bad ring-size range\n";
    return 2;
  }

  const qa::CampaignReport report = qa::run_campaign(options);

  if (json) {
    std::cout << "{\"cases\":" << report.cases_run
              << ",\"clean\":" << report.clean_cases
              << ",\"faulty\":" << report.faulty_cases
              << ",\"counterexamples\":" << report.counterexamples.size()
              << ",\"pulses_mean\":" << report.pulses.mean
              << ",\"pulses_p99\":" << report.pulses.p99
              << ",\"deliveries_mean\":" << report.deliveries.mean << "}\n";
  } else {
    std::cout << "campaign: " << report.cases_run << " cases ("
              << report.clean_cases << " clean, " << report.faulty_cases
              << " faulty), " << report.counterexamples.size()
              << " counterexample(s)\n"
              << "pulses: mean=" << report.pulses.mean
              << " p99=" << report.pulses.p99 << " max=" << report.pulses.max
              << "\n";
  }

  if (report.ok()) return 0;

  const qa::Counterexample& cx = report.counterexamples.front();
  std::cout << "counterexample: seed=" << cx.seed << " property="
            << cx.result.failed_property << "\n  " << cx.result.diagnostic
            << "\n";
  print_case(std::cout, "original", cx.original);
  print_case(std::cout, "minimal", cx.minimal);
  if (options.shrink) {
    std::cout << "shrink: " << cx.shrink_stats.attempts << " attempts, "
              << cx.shrink_stats.improvements << " improvements\n";
  }

  if (!repro_out.empty()) {
    qa::ReproFile repro;
    repro.c = cx.minimal;
    repro.props = options.properties;
    repro.failed_property = cx.result.failed_property;
    repro.diagnostic = cx.result.diagnostic;
    qa::save_repro_file(repro_out, repro);
    std::cout << "wrote repro " << repro_out << "\n";
  }
  if (!trace_out.empty()) {
    if (!write_trace_file(trace_out, cx.minimal, cx.result.outcome.trace)) {
      return 2;
    }
    std::cout << "wrote trace " << trace_out << "\n";
  }
  return 1;
}

int cmd_replay(const std::string& path, const std::string& trace_out) {
  qa::ReproFile repro;
  try {
    repro = qa::load_repro_file(path);
  } catch (const std::exception& e) {
    std::cerr << "colex-fuzz: failed to load " << path << ": " << e.what()
              << "\n";
    return 2;
  }

  print_case(std::cout, "replaying", repro.c);
  const qa::CaseResult result = qa::check_case(repro.c, repro.props);
  if (!trace_out.empty() &&
      !write_trace_file(trace_out, repro.c, result.outcome.trace)) {
    return 2;
  }

  if (result.failed_property == repro.failed_property) {
    std::cout << "replay: REPRODUCED ("
              << (repro.failed_property.empty()
                      ? std::string("all properties hold")
                      : "property '" + repro.failed_property +
                            "' fails as recorded")
              << ")\n";
    return 0;
  }
  std::cout << "replay: DIVERGED (recorded '" << repro.failed_property
            << "', observed '" << result.failed_property << "')\n";
  if (!result.diagnostic.empty()) {
    std::cout << "  " << result.diagnostic << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();

  if (args[0] == "run") {
    return cmd_run({args.begin() + 1, args.end()});
  }
  if (args[0] == "replay" || args[0] == "--replay") {
    if (args.size() < 2) return usage();
    std::string trace_out;
    if (args.size() == 4 && args[2] == "--trace-out") {
      trace_out = args[3];
    } else if (args.size() != 2) {
      return usage();
    }
    return cmd_replay(args[1], trace_out);
  }
  return usage();
}
