// Non-oriented rings (Algorithm 3 / Theorem 2): the ring's ports are
// scrambled arbitrarily; the algorithm elects a leader AND orients the ring
// (quiescent stabilization — no node ever knows it is done, but all pulse
// activity provably ceases).
//
//   ./examples/nonoriented_ring [n] [seed]
#include <cstdlib>
#include <iostream>

#include "co/election.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace colex;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;
  if (n == 0) {
    std::cerr << "ring size must be positive\n";
    return 1;
  }

  util::Xoshiro256StarStar rng(seed);
  std::vector<std::uint64_t> ids;
  while (ids.size() < n) {
    const std::uint64_t candidate = rng.in_range(1, 4 * n);
    bool fresh = true;
    for (const auto existing : ids) fresh = fresh && existing != candidate;
    if (fresh) ids.push_back(candidate);
  }
  // Scramble every node's ports by a coin flip: the nodes cannot tell which
  // port faces which neighbor.
  std::vector<bool> flips(n);
  for (std::size_t v = 0; v < n; ++v) flips[v] = rng.bernoulli(0.5);

  co::Alg3NonOriented::Options options;
  options.scheme = co::IdScheme::improved;  // Theorem 2: n(2*IDmax+1) pulses
  sim::RandomScheduler scheduler(seed);
  const auto result =
      co::elect_and_orient(ids, flips, options, scheduler);

  std::cout << "Leader election + orientation on a non-oriented ring "
               "(Algorithm 3, Theorem 2)\n\n";
  util::Table table(
      {"node", "ID", "ports", "role", "rho_p0", "rho_p1", "declared CW"});
  for (std::size_t v = 0; v < n; ++v) {
    const auto& node = result.nodes[v];
    table.add_row({util::Table::num(static_cast<std::uint64_t>(v)),
                   util::Table::num(node.id),
                   flips[v] ? "swapped" : "straight",
                   co::to_string(node.role), util::Table::num(node.rho_p0),
                   util::Table::num(node.rho_p1),
                   result.cw_ports[v] == sim::Port::p0 ? "Port0" : "Port1"});
  }
  table.print(std::cout);

  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  std::cout << "\nleader                      : node " << *result.leader
            << " (ID " << ids[*result.leader] << ")\n";
  std::cout << "orientation consistent      : "
            << (result.orientation_consistent ? "yes" : "no") << "\n";
  std::cout << "CW = leader's Port1 dir     : "
            << (result.orientation_matches_leader_port1 ? "yes" : "no")
            << "\n";
  std::cout << "pulses sent / n(2*IDmax+1)  : " << result.pulses << " / "
            << co::theorem1_pulses(n, id_max) << "\n";
  return result.valid_election() && result.orientation_consistent ? 0 : 1;
}
