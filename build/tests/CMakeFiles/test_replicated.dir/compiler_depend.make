# Empty compiler generated dependencies file for test_replicated.
# This may be replaced when dependencies are built.
