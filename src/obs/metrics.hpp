// Telemetry metrics registry: named counters, gauges, and fixed-bucket
// histograms, snapshotable to JSON and mergeable across the parallel
// explorer's worker pool.
//
// Design
// ------
// * Zero overhead when disabled. Every instrumentation site in the tree is
//   gated on a nullable Registry pointer (or ObsOptions::enabled); with the
//   default-disabled options, the hot paths pay at most one pointer test.
// * Lock-free-friendly by OWNERSHIP, not by atomics: a Registry is a plain
//   single-threaded object. Concurrent producers (the parallel explorer's
//   workers, ThreadRing's node threads) each write their own registry (or
//   their own atomics) and the results are merged after the join — the same
//   determinism-by-ownership contract sim/parallel.hpp already enforces for
//   exploration accumulators. Counters sum, gauges take the max, histograms
//   add bucket-wise.
// * Handles returned by counter()/gauge()/histogram() are stable for the
//   registry's lifetime (storage is per-metric heap cells), so hot loops
//   resolve a name once and then increment through the reference.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace colex::obs {

/// Master switch for an instrumented run. Default-disabled: every layer
/// that accepts ObsOptions must be bit-identical in behavior and within
/// noise in cost when `enabled` is false.
struct ObsOptions {
  bool enabled = false;
};

/// Composes a labeled metric name: `labeled("pulses", "phase", "probe")`
/// yields `pulses{phase=probe}`. The Prometheus encoder (obs/serve.hpp)
/// splits the name back at the first '{' and renders the pairs as proper
/// label sets; the JSON snapshot keeps the composed string verbatim, so
/// recorded and live views agree on series identity.
inline std::string labeled(const std::string& family, const std::string& key,
                           const std::string& value) {
  return family + "{" + key + "=" + value + "}";
}

/// Monotonically increasing event tally.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written (or max-tracked) instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void track_max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }
  /// Merge across workers keeps the maximum: a gauge merged from a pool
  /// answers "the largest value any worker observed".
  void merge(const Gauge& other) { track_max(other.value_); }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first buckets, in ascending order; one implicit overflow bucket catches
/// everything beyond the last bound. Bucket layout is fixed at registration
/// so histograms from different workers merge bucket-wise.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      COLEX_EXPECTS(bounds_[i - 1] < bounds_[i]);
    }
    buckets_.assign(bounds_.size() + 1, 0);
  }

  void record(double v) {
    ++count_;
    sum_ += v;
    if (v > max_) max_ = v;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      if (v <= bounds_[i]) {
        ++buckets_[i];
        return;
      }
    }
    ++buckets_.back();
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  void merge(const Histogram& other) {
    COLEX_EXPECTS(bounds_ == other.bounds_);
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  /// Overwrites the recorded state wholesale — the loader path for snapshot
  /// parsers (obs::registry_from_json) reconstituting a histogram from its
  /// serialized count/sum/max/buckets. `buckets` must match the registered
  /// layout (bounds_.size() + 1 entries, overflow last).
  void restore(std::uint64_t count, double sum, double max,
               std::vector<std::uint64_t> buckets) {
    COLEX_EXPECTS(buckets.size() == bounds_.size() + 1);
    count_ = count;
    sum_ = sum;
    max_ = max;
    buckets_ = std::move(buckets);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Insertion-ordered registry of named metrics. Registration (name lookup)
/// is the cold path; hold the returned reference for hot loops.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry& other) { copy_from(other); }
  Registry& operator=(const Registry& other) {
    if (this != &other) {
      counters_.clear();
      gauges_.clear();
      histograms_.clear();
      copy_from(other);
    }
    return *this;
  }
  Registry(Registry&&) = default;
  Registry& operator=(Registry&&) = default;

  Counter& counter(const std::string& name) {
    for (auto& [n, c] : counters_) {
      if (n == name) return *c;
    }
    counters_.emplace_back(name, std::make_unique<Counter>());
    return *counters_.back().second;
  }

  Gauge& gauge(const std::string& name) {
    for (auto& [n, g] : gauges_) {
      if (n == name) return *g;
    }
    gauges_.emplace_back(name, std::make_unique<Gauge>());
    return *gauges_.back().second;
  }

  /// Registers (or re-resolves) a histogram. Re-resolving an existing name
  /// ignores `bounds` — the first registration pins the bucket layout.
  Histogram& histogram(const std::string& name, std::vector<double> bounds) {
    for (auto& [n, h] : histograms_) {
      if (n == name) return *h;
    }
    histograms_.emplace_back(name,
                             std::make_unique<Histogram>(std::move(bounds)));
    return *histograms_.back().second;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Folds another registry into this one (counters sum, gauges max,
  /// histograms bucket-wise). Metrics unknown to this registry are adopted;
  /// histogram layouts for shared names must match.
  void merge(const Registry& other) {
    for (const auto& [n, c] : other.counters_) counter(n).merge(*c);
    for (const auto& [n, g] : other.gauges_) gauge(n).merge(*g);
    for (const auto& [n, h] : other.histograms_) {
      histogram(n, h->bounds()).merge(*h);
    }
  }

  const std::vector<std::pair<std::string, std::unique_ptr<Counter>>>&
  counters() const {
    return counters_;
  }
  const std::vector<std::pair<std::string, std::unique_ptr<Gauge>>>& gauges()
      const {
    return gauges_;
  }
  const std::vector<std::pair<std::string, std::unique_ptr<Histogram>>>&
  histograms() const {
    return histograms_;
  }

  /// JSON string escaping for metric names. Names are normally plain
  /// identifiers (dots, braces, '='), but nothing stops a caller from
  /// registering a name with a quote or backslash — the snapshot must stay
  /// parseable either way (and registry_from_json undoes exactly this).
  static void write_escaped_name(std::ostream& os, const std::string& name) {
    os << '"';
    for (const char c : name) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default: os << c;
      }
    }
    os << '"';
  }

  /// One-object JSON snapshot, insertion-ordered — embeddable verbatim in
  /// BENCH_E*.json and trace exports.
  void write_json(std::ostream& os) const {
    os << "{\"counters\":{";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      if (i) os << ",";
      write_escaped_name(os, counters_[i].first);
      os << ":" << counters_[i].second->value();
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges_.size(); ++i) {
      if (i) os << ",";
      write_escaped_name(os, gauges_[i].first);
      os << ":" << gauges_[i].second->value();
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
      const Histogram& h = *histograms_[i].second;
      if (i) os << ",";
      write_escaped_name(os, histograms_[i].first);
      os << ":{\"count\":" << h.count()
         << ",\"sum\":" << h.sum() << ",\"max\":" << h.max() << ",\"bounds\":[";
      for (std::size_t b = 0; b < h.bounds().size(); ++b) {
        if (b) os << ",";
        os << h.bounds()[b];
      }
      os << "],\"buckets\":[";
      for (std::size_t b = 0; b < h.buckets().size(); ++b) {
        if (b) os << ",";
        os << h.buckets()[b];
      }
      os << "]}";
    }
    os << "}}";
  }

  std::string to_json() const {
    std::ostringstream os;
    write_json(os);
    return os.str();
  }

 private:
  void copy_from(const Registry& other) {
    for (const auto& [n, c] : other.counters_) {
      counters_.emplace_back(n, std::make_unique<Counter>(*c));
    }
    for (const auto& [n, g] : other.gauges_) {
      gauges_.emplace_back(n, std::make_unique<Gauge>(*g));
    }
    for (const auto& [n, h] : other.histograms_) {
      histograms_.emplace_back(n, std::make_unique<Histogram>(*h));
    }
  }

  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace colex::obs
