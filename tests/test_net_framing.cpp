// Wire-level tests for the socket backend: incremental HELLO / control
// parsers under partial and coalesced reads, the pulse endpoint's event
// loop on socketpairs (burst coalescing, EOF mid-election, teardown), and
// the connect helpers' refused-vs-fatal classification. Every wait in here
// is deadline-based — no sleeps, no timing assumptions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/node.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace colex::net {
namespace {

/// A connected AF_UNIX pair with RAII ends (stream semantics match the TCP
/// loopback paths the backend runs on, minus the handshake latency).
struct Pair {
  Fd a, b;
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Fd(fds[0]);
    b = Fd(fds[1]);
  }
};

/// A loopback port that refuses connections for as long as `guard` lives:
/// bound but never listened on, so the kernel RSTs every SYN while the bind
/// reservation stops concurrent processes from grabbing the port (a
/// bind-then-close probe would race with other test runs on this box).
std::uint16_t refusing_port(Fd& guard) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  guard = Fd{fd};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  return ntohs(addr.sin_port);
}

std::vector<unsigned char> concat(
    std::initializer_list<std::vector<unsigned char>> frames) {
  std::vector<unsigned char> out;
  for (const auto& f : frames) out.insert(out.end(), f.begin(), f.end());
  return out;
}

// --- HelloParser ---------------------------------------------------------

TEST(HelloParser, ByteAtATime) {
  const auto frame = encode_hello(5, 12);
  ASSERT_EQ(frame.size(), kHelloSize);
  HelloParser p;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(p.done()) << "done after only " << i << " bytes";
    EXPECT_EQ(p.feed(&frame[i], 1), 1u);
  }
  ASSERT_TRUE(p.done());
  EXPECT_EQ(p.hello().sender, 5u);
  EXPECT_EQ(p.hello().ring_size, 12u);
}

TEST(HelloParser, StopsAtFrameBoundary) {
  // HELLO followed by pulse bytes in one read: the parser must take exactly
  // the HELLO and leave the pulses untouched.
  auto bytes = encode_hello(0, 1);
  bytes.push_back(kPulseByte);
  bytes.push_back(kPulseByte);
  HelloParser p;
  EXPECT_EQ(p.feed(bytes.data(), bytes.size()), kHelloSize);
  EXPECT_TRUE(p.done());
}

TEST(HelloParser, BadMagicIsAnError) {
  unsigned char junk[4] = {'C', 'L', 'X', 'X'};
  HelloParser p;
  p.feed(junk, 4);
  EXPECT_FALSE(p.done());
  EXPECT_NE(p.error().find("bad magic"), std::string::npos);
}

// --- CtlParser -----------------------------------------------------------

TEST(CtlParser, CoalescedFramesSplitAtArbitraryBoundaries) {
  const auto bytes =
      concat({encode_ctl(Ctl::join, {3, 40100}),
              encode_ctl(Ctl::report, {kStateIdle, 17, 16}),
              encode_ctl(Ctl::probe_ack, {2, kStateDone, 17, 17}),
              encode_err("node 3: something broke"),
              encode_ctl(Ctl::stop, {})});
  // Re-feed the same stream at every split point: identical decode.
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    CtlParser p;
    std::vector<CtlMsg> msgs;
    ASSERT_TRUE(p.feed(bytes.data(), split, msgs));
    ASSERT_TRUE(p.feed(bytes.data() + split, bytes.size() - split, msgs));
    ASSERT_EQ(msgs.size(), 5u) << "split at " << split;
    EXPECT_EQ(msgs[0].type, Ctl::join);
    EXPECT_EQ(msgs[0].words, (std::vector<std::uint64_t>{3, 40100}));
    EXPECT_EQ(msgs[1].type, Ctl::report);
    EXPECT_EQ(msgs[1].words, (std::vector<std::uint64_t>{kStateIdle, 17, 16}));
    EXPECT_EQ(msgs[2].type, Ctl::probe_ack);
    EXPECT_EQ(msgs[3].type, Ctl::err);
    EXPECT_EQ(msgs[3].text, "node 3: something broke");
    EXPECT_EQ(msgs[4].type, Ctl::stop);
  }
}

TEST(CtlParser, UnknownTypeIsFatal) {
  CtlParser p;
  std::vector<CtlMsg> msgs;
  const unsigned char bad = 0x7f;
  EXPECT_FALSE(p.feed(&bad, 1, msgs));
  EXPECT_NE(p.error().find("unknown frame type"), std::string::npos);
  // A poisoned parser stays poisoned.
  const auto ok = encode_ctl(Ctl::stop, {});
  EXPECT_FALSE(p.feed(ok.data(), ok.size(), msgs));
}

TEST(ResultFrame, RoundTripsOutcomeAndCounters) {
  rt::BlockingOutcome out;
  out.id = 9;
  out.role = co::Role::leader;
  out.counters = {9, 9, 10, 10};
  out.rho_port[0] = 3;
  out.sigma_port[1] = 4;
  out.cw_port = sim::Port::p0;
  out.terminated = true;
  out.phase_sends[2] = 7;
  out.phase_waits[5] = 11;
  const auto frame = encode_result(out, 19, 19);
  CtlParser p;
  std::vector<CtlMsg> msgs;
  ASSERT_TRUE(p.feed(frame.data(), frame.size(), msgs));
  ASSERT_EQ(msgs.size(), 1u);
  ASSERT_EQ(msgs[0].type, Ctl::result);
  const DecodedResult r = decode_result(msgs[0].words);
  EXPECT_EQ(r.outcome.id, 9u);
  EXPECT_EQ(r.outcome.role, co::Role::leader);
  EXPECT_EQ(r.outcome.counters.rho_ccw, 10u);
  EXPECT_EQ(r.outcome.rho_port[0], 3u);
  EXPECT_EQ(r.outcome.sigma_port[1], 4u);
  EXPECT_EQ(r.outcome.cw_port, sim::Port::p0);
  EXPECT_TRUE(r.outcome.terminated);
  EXPECT_FALSE(r.outcome.stopped);
  EXPECT_EQ(r.outcome.phase_sends[2], 7u);
  EXPECT_EQ(r.outcome.phase_waits[5], 11u);
  EXPECT_EQ(r.sent, 19u);
  EXPECT_EQ(r.consumed, 19u);
}

// --- Handshake over a real stream ----------------------------------------

TEST(Handshake, HelloRoundTripAndPulsesSurvive) {
  Pair edge;
  const Deadline deadline = Deadline::in_ms(2000);
  std::string err;
  ASSERT_TRUE(send_hello(edge.a.get(), 4, 9, deadline, &err)) << err;
  // Pulses right behind the HELLO in the same segment.
  const unsigned char pulses[3] = {kPulseByte, kPulseByte, kPulseByte};
  ASSERT_TRUE(send_all(edge.a.get(), pulses, 3, deadline, &err)) << err;
  ASSERT_TRUE(expect_hello(edge.b.get(), 4, 9, deadline, &err)) << err;
  // expect_hello must not have eaten the pulses.
  unsigned char rest[8] = {};
  EXPECT_EQ(::read(edge.b.get(), rest, sizeof(rest)), 3);
  EXPECT_EQ(rest[0], kPulseByte);
}

TEST(Handshake, WrongSenderRejected) {
  Pair edge;
  const Deadline deadline = Deadline::in_ms(2000);
  std::string err;
  ASSERT_TRUE(send_hello(edge.a.get(), 4, 9, deadline, &err)) << err;
  EXPECT_FALSE(expect_hello(edge.b.get(), 5, 9, deadline, &err));
  EXPECT_NE(err.find("expected predecessor index 5"), std::string::npos);
}

TEST(Handshake, PeerEofMidHelloRejected) {
  Pair edge;
  const unsigned char half[6] = {'C', 'L', 'X', 'P', 1, 0};
  std::string err;
  ASSERT_EQ(::write(edge.a.get(), half, sizeof(half)), 6);
  edge.a.reset();  // EOF with the HELLO half-sent
  EXPECT_FALSE(expect_hello(edge.b.get(), 0, 1, Deadline::in_ms(2000), &err));
  EXPECT_NE(err.find("peer closed"), std::string::npos);
}

TEST(Handshake, AcceptPredecessorDropsStrayConnections) {
  // Ephemeral-port recycling can aim an unrelated process's connect at a
  // freshly bound listener. Formation must drop connections that fail the
  // HELLO handshake and keep accepting — the real predecessor's connect
  // waits behind the strays in the listener backlog.
  std::uint16_t port = 0;
  std::string err;
  Fd listener = listen_on(0, &port, &err);
  ASSERT_TRUE(listener.valid()) << err;
  const Deadline deadline = Deadline::in_ms(5000);

  // Stray 1: connects and dies without a word (a run torn down elsewhere).
  Fd stray_eof = connect_retry(port, deadline, &err);
  ASSERT_TRUE(stray_eof.valid()) << err;
  stray_eof.reset();
  // Stray 2: a well-formed HELLO from the wrong ring (node 9 of 12).
  Fd stray_wrong = connect_retry(port, deadline, &err);
  ASSERT_TRUE(stray_wrong.valid()) << err;
  ASSERT_TRUE(send_hello(stray_wrong.get(), 9, 12, deadline, &err)) << err;
  // The real predecessor: node 1 of a 3-ring.
  Fd real = connect_retry(port, deadline, &err);
  ASSERT_TRUE(real.valid()) << err;
  ASSERT_TRUE(send_hello(real.get(), 1, 3, deadline, &err)) << err;

  Fd pred = accept_predecessor(listener.get(), 1, 3, deadline, &err);
  ASSERT_TRUE(pred.valid()) << err;
  // Returned the real predecessor's connection: a pulse sent there lands.
  const unsigned char pulse = kPulseByte;
  ASSERT_TRUE(send_all(real.get(), &pulse, 1, deadline, &err)) << err;
  unsigned char got = 0;
  ASSERT_EQ(::read(pred.get(), &got, 1), 1);
  EXPECT_EQ(got, kPulseByte);
}

TEST(Handshake, AcceptPredecessorGivesUpAtDeadline) {
  std::uint16_t port = 0;
  std::string err;
  Fd listener = listen_on(0, &port, &err);
  ASSERT_TRUE(listener.valid()) << err;
  const Fd pred =
      accept_predecessor(listener.get(), 0, 1, Deadline::in_ms(100), &err);
  EXPECT_FALSE(pred.valid());
  EXPECT_NE(err.find("accept predecessor"), std::string::npos);
}

// --- PulseEndpoint event loop on socketpairs -----------------------------

/// Endpoint wired to two socketpairs (ring edges) plus a control pair.
/// succ/pred/ctl are the REMOTE ends the test scripts.
struct Bench {
  Pair succ_pair, pred_pair, ctl_pair;
  PulseEndpoint ep;
  explicit Bench(std::uint64_t timeout_ms = 2000, bool flip = false)
      : ep(std::move(succ_pair.a), std::move(pred_pair.a),
           std::move(ctl_pair.a), flip ? sim::Port::p0 : sim::Port::p1,
           Deadline::in_ms(timeout_ms)) {}
  int succ() const { return succ_pair.b.get(); }
  int pred() const { return pred_pair.b.get(); }
  int ctl() const { return ctl_pair.b.get(); }
};

TEST(PulseEndpoint, CoalescedBurstArrivesAsIndividualPulses) {
  Bench bench;
  // 100 pulses in one write on the successor edge: with the oriented label
  // mapping they surface on local Port1 (the successor-facing label).
  std::vector<unsigned char> burst(100, kPulseByte);
  std::string err;
  ASSERT_TRUE(send_all(bench.succ(), burst.data(), burst.size(),
                       Deadline::in_ms(2000), &err));
  ASSERT_TRUE(bench.ep.wait());
  int got = 0;
  while (bench.ep.recv(sim::Port::p1)) ++got;
  EXPECT_EQ(got, 100);
  EXPECT_FALSE(bench.ep.recv(sim::Port::p0));  // nothing on the other label
  EXPECT_EQ(bench.ep.consumed(), 100u);
  EXPECT_EQ(bench.ep.counters().bytes_rx, 100u);
}

TEST(PulseEndpoint, SendsAreBatchedUntilWaitAndIdleIsReported) {
  Bench bench(250);  // short watchdog: wait() must end on its own
  for (int i = 0; i < 10; ++i) bench.ep.send(sim::Port::p1);
  EXPECT_EQ(bench.ep.counters().bytes_tx, 0u) << "sends must batch";
  // Nothing arrives: wait() flushes, reports idle, blocks, and ends at the
  // deadline (false) — every step deadline-driven, no sleeps.
  EXPECT_FALSE(bench.ep.wait());
  EXPECT_EQ(bench.ep.counters().bytes_tx, 10u);
  unsigned char rx[32] = {};
  EXPECT_EQ(::read(bench.succ(), rx, sizeof(rx)), 10);
  // The idle REPORT went out on the control plane before blocking.
  CtlParser p;
  std::vector<CtlMsg> msgs;
  unsigned char ctl_rx[64] = {};
  const ssize_t n = ::read(bench.ctl(), ctl_rx, sizeof(ctl_rx));
  ASSERT_GT(n, 0);
  ASSERT_TRUE(p.feed(ctl_rx, static_cast<std::size_t>(n), msgs));
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].type, Ctl::report);
  EXPECT_EQ(msgs[0].words[0], kStateIdle);
  EXPECT_EQ(msgs[0].words[1], 10u);  // sent
  EXPECT_EQ(msgs[0].words[2], 0u);   // consumed
}

TEST(PulseEndpoint, FlippedLabelMapsEdgesSymmetrically) {
  Bench bench(2000, /*flip=*/true);
  bench.ep.send(sim::Port::p0);  // successor-facing label under a flip
  ASSERT_TRUE(bench.ep.flush());
  unsigned char rx[4] = {};
  EXPECT_EQ(::read(bench.succ(), rx, sizeof(rx)), 1);
  const unsigned char one = kPulseByte;
  std::string err;
  ASSERT_TRUE(send_all(bench.pred(), &one, 1, Deadline::in_ms(2000), &err));
  ASSERT_TRUE(bench.ep.wait());
  EXPECT_TRUE(bench.ep.recv(sim::Port::p1));  // predecessor = opposite label
}

TEST(PulseEndpoint, StopFrameEndsWaitWithFalse) {
  Bench bench;
  const auto stop = encode_ctl(Ctl::stop, {});
  std::string err;
  ASSERT_TRUE(
      send_all(bench.ctl(), stop.data(), stop.size(), Deadline::in_ms(2000),
               &err));
  EXPECT_FALSE(bench.ep.wait());
  EXPECT_TRUE(bench.ep.stopped());
  EXPECT_TRUE(bench.ep.error().empty()) << bench.ep.error();
}

TEST(PulseEndpoint, EofMidElectionSurfacesViaDeadline) {
  // A ring edge closing mid-election is not instantly fatal (it races STOP
  // at teardown) — but with no STOP arriving, the wait must end at the
  // deadline with the EOF recorded, not hang and not crash.
  Bench bench(250);  // short watchdog: this test drives the expiry path
  bench.succ_pair.b.reset();
  bench.pred_pair.b.reset();
  EXPECT_FALSE(bench.ep.wait());
  EXPECT_TRUE(bench.ep.stopped());
  EXPECT_NE(bench.ep.error().find("EOF"), std::string::npos)
      << bench.ep.error();
}

TEST(PulseEndpoint, CoordinatorEofIsImmediatelyFatal) {
  Bench bench;
  bench.ctl_pair.b.reset();  // coordinator died
  EXPECT_FALSE(bench.ep.wait());
  EXPECT_NE(bench.ep.error().find("control connection closed"),
            std::string::npos);
}

TEST(PulseEndpoint, ProbeAckDeferredUntilQueueDrains) {
  Bench bench(250);  // short watchdog ends the second wait
  // A pulse and a probe arrive together; the endpoint must answer the
  // probe only after the pulse is consumed.
  const unsigned char one = kPulseByte;
  std::string err;
  ASSERT_TRUE(send_all(bench.pred(), &one, 1, Deadline::in_ms(2000), &err));
  const auto probe = encode_ctl(Ctl::probe, {7});
  ASSERT_TRUE(send_all(bench.ctl(), probe.data(), probe.size(),
                       Deadline::in_ms(2000), &err));
  ASSERT_TRUE(bench.ep.wait());  // pulse pending: returns true, no ack yet
  EXPECT_EQ(bench.ep.counters().probe_acks, 0u);
  // The predecessor edge carries the opposite label of the successor edge
  // (p1 here), so the pulse surfaces on local port p0.
  EXPECT_TRUE(bench.ep.recv(sim::Port::p0));
  // Now idle: the next wait answers the deferred probe before blocking
  // (then ends at the deadline — nothing else arrives).
  EXPECT_FALSE(bench.ep.wait());
  EXPECT_EQ(bench.ep.counters().probe_acks, 1u);
  // Control stream seen by the "coordinator": REPORT then PROBE_ACK with
  // round 7 and consumed == 1.
  CtlParser p;
  std::vector<CtlMsg> msgs;
  unsigned char rx[256] = {};
  const ssize_t n = ::read(bench.ctl(), rx, sizeof(rx));
  ASSERT_GT(n, 0);
  ASSERT_TRUE(p.feed(rx, static_cast<std::size_t>(n), msgs));
  ASSERT_FALSE(msgs.empty());
  const CtlMsg& ack = msgs.back();
  ASSERT_EQ(ack.type, Ctl::probe_ack);
  EXPECT_EQ(ack.words[0], 7u);
  EXPECT_EQ(ack.words[1], kStateIdle);
  EXPECT_EQ(ack.words[3], 1u);  // consumed
}

// --- Connect classification ----------------------------------------------

TEST(Connect, RefusedIsClassifiedRetryable) {
  // Connect to a bound-but-not-listening port: must be `refused`, not a
  // generic error.
  Fd guard;
  const std::uint16_t port = refusing_port(guard);
  const ConnectResult r = connect_once(port);
  EXPECT_EQ(r.status, ConnectStatus::refused);
  EXPECT_FALSE(r.fd.valid());
}

TEST(Connect, RetryGivesUpAtDeadlineOnRefusal) {
  Fd guard;
  const std::uint16_t port = refusing_port(guard);
  std::string err;
  Fd fd = connect_retry(port, Deadline::in_ms(150), &err);
  EXPECT_FALSE(fd.valid());
  EXPECT_NE(err.find("refused until deadline"), std::string::npos);
}

TEST(Connect, RetrySucceedsOnceListenerExists) {
  std::uint16_t port = 0;
  std::string err;
  Fd listener = listen_on(0, &port, &err);
  ASSERT_TRUE(listener.valid()) << err;
  Fd fd = connect_retry(port, Deadline::in_ms(2000), &err);
  EXPECT_TRUE(fd.valid()) << err;
}

TEST(Connect, AcceptDeadlineExpires) {
  std::uint16_t port = 0;
  std::string err;
  Fd listener = listen_on(0, &port, &err);
  ASSERT_TRUE(listener.valid()) << err;
  Fd fd = accept_one(listener.get(), Deadline::in_ms(100), &err);
  EXPECT_FALSE(fd.valid());
  EXPECT_NE(err.find("deadline"), std::string::npos);
}

}  // namespace
}  // namespace colex::net
