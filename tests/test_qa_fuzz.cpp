// End-to-end tests for the property-based fuzzing harness: fixed-seed
// campaigns over every algorithm (clean and faulty), the planted-bug
// demonstration that the find -> shrink -> repro pipeline actually works,
// and the colex-repro-v1 round-trip contract.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/export.hpp"
#include "qa/fuzzer.hpp"
#include "qa/properties.hpp"
#include "qa/repro.hpp"
#include "util/contracts.hpp"

namespace colex::qa {
namespace {

CampaignOptions base_options(std::size_t cases) {
  CampaignOptions options;
  options.cases = cases;
  options.generator.max_n = 4;
  options.generator.max_id = 8;
  options.max_failures = 1;
  return options;
}

TEST(FuzzCampaign, CleanCasesSatisfyAllPropertiesPerAlgorithm) {
  for (const Algorithm alg :
       {Algorithm::alg1, Algorithm::alg2, Algorithm::alg3_doubled,
        Algorithm::alg3_improved, Algorithm::alg4}) {
    CampaignOptions options = base_options(40);
    options.generator.algorithms = {alg};
    const CampaignReport report = run_campaign(options);
    EXPECT_EQ(report.cases_run, 40u);
    EXPECT_EQ(report.faulty_cases, 0u);
    EXPECT_TRUE(report.ok())
        << to_string(alg) << " seed "
        << report.counterexamples.front().seed << " failed "
        << report.counterexamples.front().result.failed_property << ": "
        << report.counterexamples.front().result.diagnostic;
  }
}

TEST(FuzzCampaign, RuntimeSubstratesAgreeOnFuzzedCleanCases) {
  // Cross-substrate oracle on fuzzed inputs: every clean case must elect
  // the same leader set with the exact paper-predicted pulse count on all
  // four substrates — the simulator, the ThreadRing runtime, the coroutine
  // executor, and the real-socket backend (which additionally proves
  // sent == consumed at quiescence over actual TCP connections). n stays
  // clamped small (base_options) so real threads and sockets per case are
  // cheap, and small enough that the socket leg always runs.
  const CampaignOptions options = base_options(1);
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const FuzzCase c = generate_case(seed, options.generator);
    ASSERT_TRUE(c.clean());
    const std::string diag = check_runtime_agreement(c);
    EXPECT_TRUE(diag.empty())
        << "seed " << seed << " (" << to_string(c.alg) << ", n=" << c.n()
        << "): " << diag;
  }
}

TEST(FuzzCampaign, FaultyCasesKeepTraceAndReplayProperties) {
  CampaignOptions options = base_options(60);
  options.generator.fault_fraction = 1.0;
  const CampaignReport report = run_campaign(options);
  EXPECT_EQ(report.cases_run, 60u);
  EXPECT_EQ(report.clean_cases, 0u);
  EXPECT_TRUE(report.ok())
      << "seed " << report.counterexamples.front().seed << " failed "
      << report.counterexamples.front().result.failed_property << ": "
      << report.counterexamples.front().result.diagnostic;
}

TEST(FuzzCampaign, SummariesAreSeedStable) {
  const CampaignOptions options = base_options(30);
  const CampaignReport a = run_campaign(options);
  const CampaignReport b = run_campaign(options);
  EXPECT_EQ(a.pulses.mean, b.pulses.mean);
  EXPECT_EQ(a.pulses.p99, b.pulses.p99);
  EXPECT_EQ(a.deliveries.max, b.deliveries.max);
}

TEST(FuzzCampaign, PlantedBugIsFoundAndShrunkToMinimal) {
  // The planted property claims pulses <= bound-1; Algorithm 2 meets the
  // bound exactly (Theorem 1), so EVERY clean alg2 case is a counterexample
  // and the very first seed must fail. The shrinker should then descend to
  // the global minimum: the n=1 ring with ID 1 (3 pulses > 2), no tape, no
  // faults.
  CampaignOptions options = base_options(20);
  options.generator.algorithms = {Algorithm::alg2};
  options.properties.planted_bound_bug = true;
  const CampaignReport report = run_campaign(options);

  ASSERT_EQ(report.counterexamples.size(), 1u);
  const Counterexample& cx = report.counterexamples.front();
  EXPECT_EQ(cx.seed, options.seed_start);
  EXPECT_EQ(cx.result.failed_property, "planted-bound-off-by-one");

  // Locally minimal repro: the fixed event count the issue asks for.
  EXPECT_EQ(cx.minimal.n(), 1u);
  EXPECT_EQ(cx.minimal.ids, std::vector<std::uint64_t>{1});
  EXPECT_TRUE(cx.minimal.clean());
  EXPECT_LE(cx.result.outcome.trace.size(), 6u);
  EXPECT_EQ(cx.result.outcome.counters.sent, 3u);
  EXPECT_GT(cx.shrink_stats.improvements, 0u);

  // The planted property fails, but the run still satisfies the REAL
  // Theorem 1 bound — which is what makes the exported trace pass
  // `colex-inspect check` while the repro still reproduces the bug.
  const obs::TraceMeta meta = trace_meta_for(cx.minimal);
  std::uint64_t sends = 0;
  for (const auto& e : cx.result.outcome.trace) {
    if (e.kind == sim::TraceEvent::Kind::send) ++sends;
  }
  EXPECT_EQ(sends, cx.result.outcome.counters.sent);
  EXPECT_LE(sends, meta.pulse_bound());
  EXPECT_EQ(sends, meta.pulse_bound());  // alg2 is exact
}

TEST(FuzzCampaign, ShrinkCanBeDisabled) {
  CampaignOptions options = base_options(5);
  options.generator.algorithms = {Algorithm::alg2};
  options.properties.planted_bound_bug = true;
  options.shrink = false;
  const CampaignReport report = run_campaign(options);
  ASSERT_EQ(report.counterexamples.size(), 1u);
  const Counterexample& cx = report.counterexamples.front();
  EXPECT_TRUE(cx.minimal == cx.original);
  EXPECT_EQ(cx.shrink_stats.attempts, 0u);
}

TEST(FuzzRepro, RoundTripsThroughJsonl) {
  CampaignOptions options = base_options(30);
  options.generator.fault_fraction = 1.0;
  // Collect a faulty case with real structure so every repro line type is
  // exercised at least across the loop.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const FuzzCase c = generate_case(seed, options.generator);
    ReproFile repro;
    repro.c = c;
    repro.failed_property = "example";
    repro.diagnostic = "diag with \"quotes\" and\nnewline";
    std::stringstream ss(to_repro(repro));
    const ReproFile back = load_repro(ss);
    EXPECT_TRUE(back.c == c) << "seed " << seed << " did not round-trip";
    EXPECT_EQ(back.failed_property, repro.failed_property);
    EXPECT_EQ(back.diagnostic, repro.diagnostic);
    EXPECT_EQ(back.props.planted_bound_bug, repro.props.planted_bound_bug);
    EXPECT_EQ(back.props.check_replay, repro.props.check_replay);
  }
}

TEST(FuzzRepro, TapeRoundTripPinsTheSchedule) {
  // Executing a case yields a tape; a repro carrying that tape must replay
  // to the identical outcome after a serialization round-trip.
  const FuzzCase c = generate_case(7, base_options(1).generator);
  const RunOutcome first = execute_case(c);

  FuzzCase pinned = c;
  pinned.tape = first.tape;
  ReproFile repro;
  repro.c = pinned;
  std::stringstream ss(to_repro(repro));
  const ReproFile back = load_repro(ss);

  const RunOutcome replayed = execute_case(back.c);
  EXPECT_EQ(replayed.tape, first.tape);
  EXPECT_EQ(replayed.counters.sent, first.counters.sent);
  EXPECT_EQ(replayed.roles, first.roles);
  EXPECT_EQ(replayed.report.quiescent, first.report.quiescent);
}

TEST(FuzzRepro, LoadRejectsGarbage) {
  std::stringstream empty("");
  EXPECT_THROW(load_repro(empty), util::ContractViolation);
  std::stringstream bad_format(
      "{\"type\":\"repro\",\"format\":\"colex-repro-v9\",\"seed\":1}\n");
  EXPECT_THROW(load_repro(bad_format), util::ContractViolation);
  std::stringstream no_ids(
      "{\"type\":\"repro\",\"format\":\"colex-repro-v1\",\"seed\":1,"
      "\"algorithm\":\"alg2\",\"ids\":[]}\n");
  EXPECT_THROW(load_repro(no_ids), util::ContractViolation);
}

TEST(FuzzRepro, ExportedTraceLoadsInObs) {
  // colex-fuzz --trace-out writes obs JSONL with trace_meta_for(c); verify
  // the obs loader round-trips it and the meta matches the case.
  const FuzzCase c = generate_case(3, base_options(1).generator);
  const RunOutcome outcome = execute_case(c);
  std::stringstream ss(
      obs::to_jsonl(outcome.trace, trace_meta_for(c)));
  const obs::LoadedTrace loaded = obs::load_jsonl(ss);
  EXPECT_EQ(loaded.meta.n, c.n());
  EXPECT_EQ(loaded.meta.id_max, c.effective_id_max());
  EXPECT_EQ(loaded.meta.algorithm, to_string(c.alg));
  EXPECT_EQ(loaded.events.size(), outcome.trace.size());
}

TEST(FuzzShrink, PredicateStaysAnchoredToTheFailedProperty) {
  // Directly exercise shrink_case on a synthetic failing case: planted bug
  // on a larger alg2 ring. The minimal case must still fail with the SAME
  // property, never a different one.
  PropertyOptions props;
  props.planted_bound_bug = true;
  FuzzCase c = generate_case(11, base_options(1).generator);
  c.alg = Algorithm::alg2;
  c.ids = {4, 7, 2};
  c.port_flips.clear();
  c.faults = {};
  c.corrupt = {};
  const CaseResult failing = check_case(c, props);
  ASSERT_EQ(failing.failed_property, "planted-bound-off-by-one");

  const ShrinkResult shrunk = shrink_case(c, failing, props, {});
  EXPECT_EQ(shrunk.result.failed_property, "planted-bound-off-by-one");
  EXPECT_LE(shrunk.minimal.n(), c.n());
  EXPECT_LE(shrunk.minimal.id_max(), c.id_max());
  EXPECT_GT(shrunk.stats.attempts, 0u);
}

}  // namespace
}  // namespace colex::qa
