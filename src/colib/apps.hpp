// Applications for the content-oblivious bus.
//
//  * GatherAllApp — every node broadcasts one 64-bit input; all nodes end
//    up knowing all n inputs (hence max, sum, and n itself). The simplest
//    useful instance of Corollary 5.
//  * SimulatorApp — the universal simulation: runs an arbitrary
//    content-carrying asynchronous ring algorithm (SimNode interface) over
//    pulses, serializing its message deliveries through the token. This is
//    the ring-specialized analogue of [8, Theorem 1]'s compiler.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "colib/bus.hpp"

namespace colex::colib {

/// Broadcast-everything application; see header comment.
class GatherAllApp final : public BusApp {
 public:
  explicit GatherAllApp(std::uint64_t input) : input_(input) {}

  void on_ready(std::size_t my_offset, std::size_t ring_size,
                bool is_root) override;
  void on_frame(std::size_t from, const Bits& payload) override;
  void on_token(BusCtl& ctl) override;
  void on_halt() override { halted_ = true; }
  std::unique_ptr<BusApp> clone() const override {
    return std::make_unique<GatherAllApp>(*this);
  }

  bool complete() const;
  bool halted() const { return halted_; }
  std::size_t ring_size() const { return n_; }
  std::size_t offset() const { return my_offset_; }
  /// Gathered inputs, indexed by clockwise offset from the root.
  const std::vector<std::optional<std::uint64_t>>& values() const {
    return values_;
  }
  std::uint64_t max_value() const;
  std::uint64_t sum() const;

 private:
  std::uint64_t input_;
  std::size_t my_offset_ = 0;
  std::size_t n_ = 0;
  bool is_root_ = false;
  bool sent_ = false;
  bool halted_ = false;
  std::vector<std::optional<std::uint64_t>> values_;
};

// ---------------------------------------------------------------------
// Universal simulation of asynchronous ring algorithms (Corollary 5).
// ---------------------------------------------------------------------

class SimContext;

/// A content-carrying asynchronous ring algorithm to be simulated. Nodes
/// are addressed by clockwise index (0 = the bus root) and may message
/// their two neighbors with arbitrary bit strings.
class SimNode {
 public:
  virtual ~SimNode() = default;
  /// Called once before any delivery; may send messages.
  virtual void on_start(SimContext& ctx) = 0;
  /// A message arrived from the clockwise (`from_cw` true) or
  /// counterclockwise neighbor.
  virtual void on_message(SimContext& ctx, bool from_cw,
                          const Bits& payload) = 0;
  /// Deep copy of the simulated node's state (for the fork-based schedule
  /// explorer, which clones the whole bus+app+simnode stack per branch).
  virtual std::unique_ptr<SimNode> clone() const = 0;
};

/// What a simulated node can do: inspect its coordinates and send.
class SimContext {
 public:
  std::size_t my_index() const { return my_index_; }
  std::size_t ring_size() const { return n_; }
  /// Queue a message to the clockwise (`to_cw`) or counterclockwise
  /// neighbor. Delivery order per direction is FIFO.
  void send(bool to_cw, Bits payload);

 private:
  friend class SimulatorApp;
  struct Outgoing {
    bool to_cw;
    Bits payload;
  };
  SimContext(std::size_t my_index, std::size_t n,
             std::deque<Outgoing>& outbox)
      : my_index_(my_index), n_(n), outbox_(outbox) {}
  std::size_t my_index_;
  std::size_t n_;
  std::deque<Outgoing>& outbox_;
};

/// Runs one SimNode over the bus. Each token visit transmits one pending
/// simulated message as a DATA frame ([1 direction bit][payload]); the
/// round-robin token is a fair scheduler for the simulated asynchronous
/// algorithm. The root halts the bus after a full silent rotation (no DATA
/// frame and an empty own outbox), which implies global passivity.
class SimulatorApp final : public BusApp {
 public:
  explicit SimulatorApp(std::unique_ptr<SimNode> node)
      : node_(std::move(node)) {}

  void on_ready(std::size_t my_offset, std::size_t ring_size,
                bool is_root) override;
  void on_frame(std::size_t from, const Bits& payload) override;
  void on_token(BusCtl& ctl) override;
  void on_halt() override { halted_ = true; }
  std::unique_ptr<BusApp> clone() const override {
    auto copy = std::make_unique<SimulatorApp>(node_->clone());
    copy->outbox_ = outbox_;
    copy->my_offset_ = my_offset_;
    copy->n_ = n_;
    copy->is_root_ = is_root_;
    copy->halted_ = halted_;
    copy->delivered_ = delivered_;
    copy->frames_seen_ = frames_seen_;
    copy->frames_at_last_token_ = frames_at_last_token_;
    copy->had_token_before_ = had_token_before_;
    return copy;
  }

  bool halted() const { return halted_; }
  std::size_t messages_delivered() const { return delivered_; }
  SimNode& node() { return *node_; }
  const SimNode& node() const { return *node_; }

 private:
  std::unique_ptr<SimNode> node_;
  std::deque<SimContext::Outgoing> outbox_;
  std::size_t my_offset_ = 0;
  std::size_t n_ = 0;
  bool is_root_ = false;
  bool halted_ = false;
  std::size_t delivered_ = 0;
  // Root-only: total DATA frames observed, and its value at the root's
  // previous token visit (for silent-rotation detection).
  std::uint64_t frames_seen_ = 0;
  std::uint64_t frames_at_last_token_ = 0;
  bool had_token_before_ = false;
};

/// The root broadcasts one 64-bit value to every node, then halts. The
/// cheapest non-trivial use of the bus: survey + one DATA frame + HALT.
class BroadcastApp final : public BusApp {
 public:
  /// `value` is only read at the root; other nodes may pass anything.
  explicit BroadcastApp(std::uint64_t value) : value_(value) {}

  void on_ready(std::size_t, std::size_t, bool is_root) override {
    is_root_ = is_root;
  }
  void on_frame(std::size_t, const Bits& payload) override {
    received_ = decode_u64(payload);
  }
  void on_token(BusCtl& ctl) override {
    // Only the root ever holds the token: it transmits, then halts.
    if (!sent_) {
      sent_ = true;
      ctl.send_frame(encode_u64(value_));
    } else {
      ctl.halt();
    }
  }
  void on_halt() override { halted_ = true; }
  std::unique_ptr<BusApp> clone() const override {
    return std::make_unique<BroadcastApp>(*this);
  }

  std::optional<std::uint64_t> received() const { return received_; }
  bool halted() const { return halted_; }

 private:
  std::uint64_t value_;
  bool is_root_ = false;
  bool sent_ = false;
  bool halted_ = false;
  std::optional<std::uint64_t> received_;
};

/// Assigns every node a distinct compact ID — its clockwise offset from the
/// root plus one. This is the "assigning unique IDs" task from the paper's
/// Section 5 separation discussion, and it is free beyond the survey: the
/// survey already distinguishes every node, so the root halts immediately.
class UniqueIdsApp final : public BusApp {
 public:
  void on_ready(std::size_t my_offset, std::size_t ring_size,
                bool is_root) override {
    assigned_id_ = my_offset + 1;
    n_ = ring_size;
    is_root_ = is_root;
  }
  void on_frame(std::size_t, const Bits&) override {}
  void on_token(BusCtl& ctl) override { ctl.halt(); }
  void on_halt() override { halted_ = true; }
  std::unique_ptr<BusApp> clone() const override {
    return std::make_unique<UniqueIdsApp>(*this);
  }

  /// The node's new unique ID in [1, n]; 0 until the survey completes.
  std::uint64_t assigned_id() const { return assigned_id_; }
  std::size_t ring_size() const { return n_; }
  bool halted() const { return halted_; }

 private:
  std::uint64_t assigned_id_ = 0;
  std::size_t n_ = 0;
  bool is_root_ = false;
  bool halted_ = false;
};

// ---------------------------------------------------------------------
// Demo simulated algorithms (used by tests, examples, and benches).
// ---------------------------------------------------------------------

/// Node 0 circulates an accumulator clockwise; each node adds its input;
/// when the accumulator returns, node 0 broadcasts the total and every node
/// records it.
class RingSumSimNode final : public SimNode {
 public:
  explicit RingSumSimNode(std::uint64_t input) : input_(input) {}

  void on_start(SimContext& ctx) override;
  void on_message(SimContext& ctx, bool from_cw, const Bits& payload) override;
  std::unique_ptr<SimNode> clone() const override {
    return std::make_unique<RingSumSimNode>(*this);
  }

  std::optional<std::uint64_t> total() const { return total_; }

 private:
  std::uint64_t input_;
  std::optional<std::uint64_t> total_;
};

/// Textbook Chang-Roberts with content-carrying messages, running over the
/// pulse bus: Corollary 5 at its most literal. IDs here are inputs of the
/// *simulated* algorithm and independent of the IDs used by the election.
class ChangRobertsSimNode final : public SimNode {
 public:
  explicit ChangRobertsSimNode(std::uint64_t id) : id_(id) {}

  void on_start(SimContext& ctx) override;
  void on_message(SimContext& ctx, bool from_cw, const Bits& payload) override;
  std::unique_ptr<SimNode> clone() const override {
    return std::make_unique<ChangRobertsSimNode>(*this);
  }

  bool is_leader() const { return is_leader_; }
  std::optional<std::uint64_t> leader() const { return leader_; }

 private:
  std::uint64_t id_;
  bool is_leader_ = false;
  std::optional<std::uint64_t> leader_;
};

}  // namespace colex::colib
