// E13 — Fault-tolerance sweep: how each algorithm behaves when the
// channels misbehave. The paper's guarantees assume reliable channels
// (every pulse sent is delivered exactly once); this experiment measures
// what breaks when that assumption does, fault class by fault class, and
// confirms the one robustness mechanism the paper *does* provide — §1.1
// replication — against the one fault class it covers (insertions).
//
// Two sweeps, both fully deterministic given (plan, seed, scheduler):
//  * Scripted single faults: every (channel, event-index, fault-kind)
//    triple inside the fault-free horizon, classified into
//    recovered/stalled/diverged/safety-violated.
//  * Probabilistic fault soup: per-channel drop/dup/spurious rates over
//    many seeds, reporting the outcome distribution.
//
// Expected picture (proved exhaustively for n <= 3 in test_faults.cpp,
// reproduced here at larger n):
//  * Algorithm 1 absorbs any CCW-side noise (it never reads that port),
//    but a single CW drop starves a node forever (stall) and a single CW
//    insertion circulates forever (livelock) — exact counting is brittle.
//  * Replicated Algorithm 1 (r = 1) recovers from EVERY single insertion,
//    at 2x the pulse cost; drops still break it.
//  * Algorithm 2 terminates, so faults can do worse than stall it: a
//    corrupted counter pair commits a false leader (safety violation).
#include <algorithm>
#include <array>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/replicated.hpp"
#include "co/roles.hpp"
#include "sim/faults.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

using NetBuilder = std::function<sim::PulseNetwork()>;

struct AlgUnderTest {
  std::string name;
  NetBuilder build;
  sim::FaultyNetwork::OutputCheck correct;
};

sim::NodeId max_node(const std::vector<std::uint64_t>& ids) {
  return static_cast<sim::NodeId>(
      std::max_element(ids.begin(), ids.end()) - ids.begin());
}

AlgUnderTest alg1_under_test(const std::vector<std::uint64_t>& ids) {
  return AlgUnderTest{
      "alg1",
      [ids] {
        auto net = sim::PulseNetwork::ring(ids.size());
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          net.set_automaton(v, std::make_unique<co::Alg1Stabilizing>(ids[v]));
        }
        return net;
      },
      [ids](const sim::PulseNetwork& net) {
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          const auto& alg = net.automaton_as<co::Alg1Stabilizing>(v);
          const bool should_lead = v == max_node(ids);
          if ((alg.role() == co::Role::leader) != should_lead) return false;
        }
        return true;
      }};
}

AlgUnderTest replicated_alg1_under_test(const std::vector<std::uint64_t>& ids,
                                        unsigned r) {
  return AlgUnderTest{
      "alg1 (replicated r=" + std::to_string(r) + ")",
      [ids, r] {
        auto net = sim::PulseNetwork::ring(ids.size());
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          net.set_automaton(v, std::make_unique<co::ReplicatedAdapter>(
                                   std::make_unique<co::Alg1Stabilizing>(
                                       ids[v]),
                                   r));
        }
        return net;
      },
      [ids](const sim::PulseNetwork& net) {
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          const auto& adapter = net.automaton_as<co::ReplicatedAdapter>(v);
          const auto& alg = adapter.inner_as<co::Alg1Stabilizing>();
          const bool should_lead = v == max_node(ids);
          if ((alg.role() == co::Role::leader) != should_lead) return false;
        }
        return true;
      }};
}

AlgUnderTest alg2_under_test(const std::vector<std::uint64_t>& ids) {
  return AlgUnderTest{
      "alg2",
      [ids] {
        auto net = sim::PulseNetwork::ring(ids.size());
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
        }
        return net;
      },
      [ids](const sim::PulseNetwork& net) {
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          const auto& alg = net.automaton_as<co::Alg2Terminating>(v);
          if (!alg.terminated()) return false;
          const bool should_lead = v == max_node(ids);
          if ((alg.role() == co::Role::leader) != should_lead) return false;
        }
        return true;
      }};
}

/// Algorithm 2 safety: only the true maximum may initiate termination, and
/// no node may terminate with the wrong verdict.
sim::FaultyNetwork::SafetyCheck alg2_safety(
    const std::vector<std::uint64_t>& ids) {
  return [ids](const sim::PulseNetwork& net) -> std::string {
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      const auto& alg = net.automaton_as<co::Alg2Terminating>(v);
      if (alg.initiated_termination() && v != max_node(ids)) {
        return "non-max node initiated termination";
      }
      if (alg.terminated() && alg.role() == co::Role::leader &&
          v != max_node(ids)) {
        return "terminated with a false leader";
      }
    }
    return "";
  };
}

struct OutcomeCounts {
  std::map<sim::FaultOutcome, std::uint64_t> by_outcome;
  std::uint64_t runs = 0;
  std::uint64_t faults_applied = 0;

  std::string cell(sim::FaultOutcome o) const {
    const auto it = by_outcome.find(o);
    return std::to_string(it == by_outcome.end() ? 0 : it->second);
  }
};

/// Number of events in the fault-free run: the scripted-fault horizon.
std::uint64_t horizon(const AlgUnderTest& alg) {
  sim::FaultyNetwork faulty(alg.build(), sim::FaultPlan{});
  sim::GlobalFifoScheduler sched;
  (void)faulty.run(sched);
  return faulty.injector().events_observed();
}

// Both sweeps fan their independent runs out on the work pool
// (sim/parallel.hpp): each run writes only its own result slot, the
// outcome histogram is folded sequentially afterwards, so the counts are
// identical to the old serial loops for any worker count.

OutcomeCounts scripted_sweep(const AlgUnderTest& alg,
                             const sim::FaultyNetwork::SafetyCheck& safety,
                             sim::FaultKind kind, std::size_t channels,
                             std::uint64_t max_events) {
  const std::uint64_t h = horizon(alg);
  const std::size_t grid = static_cast<std::size_t>(h + 1) * channels;
  struct Slot {
    sim::FaultOutcome outcome{};
    bool applied = false;
  };
  std::vector<Slot> slots(grid);
  sim::parallel_for(grid, sim::default_workers(), [&](std::size_t i) {
    const std::uint64_t at = static_cast<std::uint64_t>(i / channels);
    const std::size_t channel = i % channels;
    sim::FaultPlan plan;
    plan.script.push_back(sim::ScriptedFault{kind, at, channel, 0});
    sim::FaultyNetwork faulty(alg.build(), std::move(plan));
    sim::RunOptions opts;
    opts.max_events = max_events;
    sim::GlobalFifoScheduler sched;
    const auto run = faulty.run(sched, opts, safety, alg.correct);
    slots[i].applied = faulty.injector().tallies().total() > 0;
    slots[i].outcome = run.outcome;
  });
  OutcomeCounts counts;
  for (const auto& slot : slots) {
    if (!slot.applied) continue;  // fault scripted past quiescence: missed
    ++counts.runs;
    ++counts.faults_applied;
    ++counts.by_outcome[slot.outcome];
  }
  return counts;
}

OutcomeCounts probabilistic_sweep(
    const AlgUnderTest& alg, const sim::FaultyNetwork::SafetyCheck& safety,
    const sim::ChannelFaultProfile& profile, std::size_t seeds,
    std::uint64_t max_events) {
  struct Slot {
    sim::FaultOutcome outcome{};
    std::uint64_t faults = 0;
  };
  std::vector<Slot> slots(seeds);
  sim::parallel_for(seeds, sim::default_workers(), [&](std::size_t i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.all_channels = profile;
    sim::FaultyNetwork faulty(alg.build(), std::move(plan));
    sim::RunOptions opts;
    opts.max_events = max_events;
    sim::RandomScheduler sched(seed);
    const auto run = faulty.run(sched, opts, safety, alg.correct);
    slots[i].outcome = run.outcome;
    slots[i].faults = faulty.injector().tallies().total();
  });
  OutcomeCounts counts;
  for (const auto& slot : slots) {
    ++counts.runs;
    counts.faults_applied += slot.faults;
    ++counts.by_outcome[slot.outcome];
  }
  return counts;
}

void outcome_row(util::Table& table, const std::string& alg,
                 const std::string& fault, const OutcomeCounts& counts) {
  table.add_row({alg, fault, std::to_string(counts.runs),
                 counts.cell(sim::FaultOutcome::recovered_correct),
                 counts.cell(sim::FaultOutcome::stalled),
                 counts.cell(sim::FaultOutcome::diverged),
                 counts.cell(sim::FaultOutcome::safety_violated)});
}

bench::Json outcome_json(const std::string& sweep, const std::string& alg,
                         const std::string& fault,
                         const OutcomeCounts& counts) {
  auto j = bench::Json::object();
  j.set("sweep", sweep)
      .set("algorithm", alg)
      .set("fault", fault)
      .set("runs", counts.runs)
      .set("faults_applied", counts.faults_applied);
  for (const auto outcome :
       {sim::FaultOutcome::recovered_correct, sim::FaultOutcome::stalled,
        sim::FaultOutcome::diverged, sim::FaultOutcome::safety_violated}) {
    const auto it = counts.by_outcome.find(outcome);
    j.set(sim::to_string(outcome),
          it == counts.by_outcome.end() ? std::uint64_t{0} : it->second);
  }
  return j;
}

}  // namespace

int main() {
  bench::banner(
      "E13 — fault-tolerance sweep (loss / duplication / spurious delivery)",
      "reliable channels are assumed (p.2); exact pulse counting makes the "
      "algorithms brittle to count perturbations, except via the section-1.1 "
      "replication transformation, which tolerates insertions");

  bench::WallTimer total;
  bench::JsonReport report(
      "E13", "fault-tolerance sweeps (scripted grid + seeded fault soup), "
             "parallelized on the sweep pool");

  const auto ids = util::shuffled(util::dense_ids(5), 7);
  const std::size_t channels = 2 * ids.size();  // CW + CCW per edge
  const std::uint64_t budget = 50'000;

  std::cout << "ring: n=" << ids.size() << " ids={";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    std::cout << (i ? "," : "") << ids[i];
  }
  std::cout << "}\n\n";

  const std::array<std::pair<sim::FaultKind, const char*>, 3> kinds{{
      {sim::FaultKind::drop, "drop"},
      {sim::FaultKind::duplicate, "duplicate"},
      {sim::FaultKind::spurious, "spurious"},
  }};

  std::cout << "scripted single faults: every (event, channel) inside the "
               "fault-free horizon, GlobalFifo\n";
  util::Table scripted({"algorithm", "fault", "runs", "recovered", "stalled",
                        "diverged", "safety-violated"});
  bool replication_covers_insertions = true;
  bool alg1_survives_any_cw_loss = false;
  bool alg2_ever_miselects = false;
  {
    const auto alg1 = alg1_under_test(ids);
    for (const auto& [kind, label] : kinds) {
      const auto counts = scripted_sweep(alg1, {}, kind, channels, budget);
      outcome_row(scripted, alg1.name, label, counts);
      report.add_result(outcome_json("scripted", alg1.name, label, counts));
      if (kind == sim::FaultKind::drop &&
          counts.by_outcome.count(sim::FaultOutcome::recovered_correct)) {
        alg1_survives_any_cw_loss = true;
      }
    }
    const auto repl = replicated_alg1_under_test(ids, 1);
    for (const auto& [kind, label] : kinds) {
      const auto counts = scripted_sweep(repl, {}, kind, channels, budget);
      outcome_row(scripted, repl.name, label, counts);
      report.add_result(outcome_json("scripted", repl.name, label, counts));
      if (kind != sim::FaultKind::drop) {  // insertion classes
        const auto it =
            counts.by_outcome.find(sim::FaultOutcome::recovered_correct);
        if (it == counts.by_outcome.end() || it->second != counts.runs) {
          replication_covers_insertions = false;
        }
      }
    }
    const auto alg2 = alg2_under_test(ids);
    for (const auto& [kind, label] : kinds) {
      const auto counts =
          scripted_sweep(alg2, alg2_safety(ids), kind, channels, budget);
      outcome_row(scripted, alg2.name, label, counts);
      report.add_result(outcome_json("scripted", alg2.name, label, counts));
      if (counts.by_outcome.count(sim::FaultOutcome::safety_violated)) {
        alg2_ever_miselects = true;
      }
    }
  }
  scripted.print(std::cout);

  std::cout << "\nprobabilistic fault soup: per-channel rates, 40 seeded "
               "runs each, RandomScheduler (runs where no fault was drawn "
               "count as recovered)\n";
  util::Table soup({"algorithm", "fault", "runs", "faults", "recovered",
                    "stalled", "diverged", "safety-violated"});
  auto soup_row = [&soup, &report](const std::string& alg,
                                   const std::string& fault,
                                   const OutcomeCounts& counts) {
    soup.add_row({alg, fault, std::to_string(counts.runs),
                  std::to_string(counts.faults_applied),
                  counts.cell(sim::FaultOutcome::recovered_correct),
                  counts.cell(sim::FaultOutcome::stalled),
                  counts.cell(sim::FaultOutcome::diverged),
                  counts.cell(sim::FaultOutcome::safety_violated)});
    report.add_result(outcome_json("probabilistic", alg, fault, counts));
  };
  const std::size_t seeds = 40;
  const std::array<std::pair<sim::ChannelFaultProfile, const char*>, 3>
      profiles{{
          {sim::ChannelFaultProfile{0.002, 0.0, 0.0}, "drop p=0.002"},
          {sim::ChannelFaultProfile{0.0, 0.002, 0.0}, "dup p=0.002"},
          {sim::ChannelFaultProfile{0.0, 0.0, 0.002}, "spurious p=0.002"},
      }};
  for (const auto& [profile, label] : profiles) {
    const auto alg1 = alg1_under_test(ids);
    soup_row(alg1.name, label,
             probabilistic_sweep(alg1, {}, profile, seeds, budget));
    const auto repl = replicated_alg1_under_test(ids, 1);
    soup_row(repl.name, label,
             probabilistic_sweep(repl, {}, profile, seeds, budget));
  }
  soup.print(std::cout);

  // The corrupted-state coup de grace: a terminating algorithm COMMITS to
  // a mis-election that a stabilizing one would merely stall in.
  {
    auto alg2 = alg2_under_test(ids);
    const sim::NodeId victim = max_node(ids) == 0 ? 1 : 0;
    sim::FaultyNetwork faulty(
        alg2.build(), sim::FaultPlan{}, {},
        [&ids, victim](sim::PulseNetwork& net) {
          co::PulseCounters k;
          k.rho_cw = ids[victim];
          k.rho_ccw = ids[victim];
          net.automaton_as<co::Alg2Terminating>(victim).load_corrupted_state(
              k, co::Role::leader);
        });
    sim::RunOptions opts;
    opts.max_events = budget;
    sim::GlobalFifoScheduler sched;
    const auto run = faulty.run(sched, opts, alg2_safety(ids), alg2.correct);
    std::cout << "\ncorrupted counters at a non-max node (rho_cw = rho_ccw = "
              << "own ID): outcome = " << sim::to_string(run.outcome)
              << (run.diagnosis.empty() ? "" : " — " + run.diagnosis) << "\n";
    if (run.outcome == sim::FaultOutcome::safety_violated) {
      alg2_ever_miselects = true;
    }
  }

  report.root().set("workers",
                    static_cast<std::uint64_t>(sim::default_workers()));
  report.finish(total.seconds());

  bench::verdict(
      !alg1_survives_any_cw_loss && replication_covers_insertions &&
          alg2_ever_miselects,
      "exact counting tolerates no loss, section-1.1 replication masks every "
      "single insertion, and termination converts corruption into a "
      "committed mis-election");
  return 0;
}
