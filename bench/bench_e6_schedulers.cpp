// E6 — Model property: in this fully defective model, the algorithms'
// pulse complexity is an execution invariant — identical under every
// adversarial scheduler and start interleaving — and Lemma 11's three-way
// equivalence (quiescence <=> all crossed <=> all counters at IDmax) holds
// at the end of every run.
#include <iostream>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "co/alg1.hpp"
#include "co/election.hpp"
#include "sim/parallel.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

int main() {
  using namespace colex;
  bench::banner(
      "E6  Schedule independence and Lemma 11 equivalences "
      "(bench_e6_schedulers)",
      "pulse complexity does not depend on the adversary; at quiescence "
      "every node has rho_cw = sigma_cw = IDmax (Lemma 11)");
  bench::WallTimer total;
  bench::JsonReport report(
      "E6", "schedule independence and Lemma 11; seeded adversary sweep");

  const auto ids = util::shuffled(util::sparse_ids(24, 240, 5), 9);
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);

  util::Table table({"scheduler", "alg1 pulses", "alg2 pulses",
                     "alg3-improved pulses", "leader", "lemma11"});
  bool all_ok = true;
  std::optional<std::uint64_t> ref1, ref2, ref3;

  for (auto& named : sim::standard_schedulers(6)) {
    const auto r1 = co::elect_oriented_stabilizing(ids, *named.scheduler);
    named.scheduler->reset();
    const auto r2 = co::elect_oriented_terminating(ids, *named.scheduler);
    named.scheduler->reset();
    co::Alg3NonOriented::Options options;
    const auto r3 = co::elect_and_orient(ids, util::random_flips(24, 3),
                                         options, *named.scheduler);

    bool lemma11 = r1.quiescent;
    for (const auto& node : r1.nodes) {
      lemma11 = lemma11 && node.rho_cw == id_max && node.sigma_cw == id_max;
    }
    const bool same_result =
        (!ref1 || (r1.pulses == *ref1 && r2.pulses == *ref2 &&
                   r3.pulses == *ref3)) &&
        r1.leader == r2.leader && r2.leader == r3.leader &&
        r2.valid_election();
    if (!ref1) {
      ref1 = r1.pulses;
      ref2 = r2.pulses;
      ref3 = r3.pulses;
    }
    all_ok = all_ok && same_result && lemma11;
    table.add_row({named.name, util::Table::num(r1.pulses),
                   util::Table::num(r2.pulses), util::Table::num(r3.pulses),
                   util::Table::num(static_cast<std::uint64_t>(*r2.leader)),
                   lemma11 ? "holds" : "VIOLATED"});
    auto row = bench::Json::object();
    row.set("scheduler", named.name)
        .set("alg1_pulses", r1.pulses)
        .set("alg2_pulses", r2.pulses)
        .set("alg3_pulses", r3.pulses)
        .set("lemma11", lemma11);
    report.add_result(std::move(row));
  }
  table.print(std::cout);

  // Interleaved starts: spontaneous wake-ups racing with deliveries. Each
  // seed is an independent run, so the sweep fans out on the work pool;
  // results land in per-seed slots and are checked on the main thread.
  const std::size_t kSeeds = 64;
  std::cout << "\nInterleaved-start runs (alg2, " << kSeeds << " seeds): ";
  std::vector<std::uint64_t> sweep_pulses(kSeeds, 0);
  std::vector<bool> sweep_valid(kSeeds, false);
  bench::WallTimer sweep_timer;
  sim::parallel_for(kSeeds, sim::default_workers(), [&](std::size_t i) {
    const std::uint64_t seed = static_cast<std::uint64_t>(i) + 1;
    sim::RandomScheduler sched(seed);
    sim::RunOptions opts;
    opts.interleave_starts = true;
    opts.interleave_seed = seed * 41;
    const auto r = co::elect_oriented_terminating(ids, sched, opts);
    sweep_pulses[i] = r.pulses;
    sweep_valid[i] = r.valid_election();
  });
  const double sweep_seconds = sweep_timer.seconds();
  bool interleave_ok = true;
  for (std::size_t i = 0; i < kSeeds; ++i) {
    interleave_ok =
        interleave_ok && sweep_pulses[i] == *ref2 && sweep_valid[i];
  }
  std::cout << (interleave_ok ? "all exact" : "MISMATCH") << " ("
            << *ref2 << " pulses each, " << sweep_seconds << "s on "
            << sim::default_workers() << " workers)\n";
  all_ok = all_ok && interleave_ok;

  auto sweep = bench::Json::object();
  sweep.set("seeds", static_cast<std::uint64_t>(kSeeds))
      .set("workers", static_cast<std::uint64_t>(sim::default_workers()))
      .set("pulses_each", *ref2)
      .set("all_exact", interleave_ok)
      .set("seconds", sweep_seconds);
  report.root().set_json("interleaved_start_sweep", std::move(sweep));
  report.root().set("all_ok", all_ok);
  report.finish(total.seconds());

  bench::verdict(all_ok,
                 "identical pulse counts, leader, and Lemma 11 state under "
                 "every adversary and start interleaving");
  return all_ok ? 0 : 1;
}
