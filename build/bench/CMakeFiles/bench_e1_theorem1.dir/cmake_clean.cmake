file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_theorem1.dir/bench_e1_theorem1.cpp.o"
  "CMakeFiles/bench_e1_theorem1.dir/bench_e1_theorem1.cpp.o.d"
  "bench_e1_theorem1"
  "bench_e1_theorem1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_theorem1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
