// Stress tests for the Corollary 5 composition: sweeping ring sizes,
// schedulers, applications (broadcast / gather / unique-ids / simulator),
// and simulated algorithms with multi-message bursts, verifying exact
// quiescent termination, attribution, and application correctness in every
// combination.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "colib/apps.hpp"
#include "colib/composed.hpp"
#include "helpers.hpp"
#include "sim/network.hpp"

namespace colex::colib {
namespace {

template <typename App>
const App& app_at(sim::PulseNetwork& net, sim::NodeId v) {
  const auto* bus = net.automaton_as<ComposedNode>(v).bus();
  return dynamic_cast<const App&>(bus->app());
}

TEST(CompositionStress, BroadcastAcrossSizesAndSchedulers) {
  for (const std::size_t n : {1u, 2u, 3u, 5u, 9u}) {
    const auto ids = test::shuffled(test::dense_ids(n), n + 3);
    for (auto& named : sim::standard_schedulers(2)) {
      sim::PulseNetwork net;
      const auto result = run_composed_with_network(
          ids,
          [](sim::NodeId) { return std::make_unique<BroadcastApp>(777); },
          *named.scheduler, {}, net);
      ASSERT_TRUE(result.all_terminated) << named.name << " n=" << n;
      ASSERT_TRUE(result.quiescent) << named.name << " n=" << n;
      EXPECT_EQ(result.report.deliveries_to_terminated, 0u);
      for (sim::NodeId v = 0; v < n; ++v) {
        const auto& app = app_at<BroadcastApp>(net, v);
        ASSERT_TRUE(app.received().has_value()) << named.name << " v=" << v;
        EXPECT_EQ(*app.received(), 777u);
        EXPECT_TRUE(app.halted());
      }
    }
  }
}

TEST(CompositionStress, BroadcastCostFormula) {
  // survey (n^2+n) + DATA(len(777)=10 bits -> n(2*10+3)) + HALT (2n).
  const std::size_t n = 6;
  const auto ids = test::shuffled(test::dense_ids(n), 2);
  sim::GlobalFifoScheduler sched;
  const auto result = run_composed(
      ids, [](sim::NodeId) { return std::make_unique<BroadcastApp>(777); },
      sched);
  ASSERT_TRUE(result.all_terminated);
  const std::uint64_t expected_bus = (n * n + n) + n * (2 * 10 + 3) + 2 * n;
  EXPECT_EQ(result.bus_pulses, expected_bus);
}

TEST(CompositionStress, GatherZeroAndLargeValues) {
  // Edge payloads: 0 encodes as the empty frame payload; ~0ull as 64 bits.
  const std::vector<std::uint64_t> ids{4, 9, 2};
  const std::vector<std::uint64_t> inputs{0, ~0ull, 5};
  sim::PulseNetwork net;
  sim::RandomScheduler sched(2);
  const auto result = run_composed_with_network(
      ids,
      [&inputs](sim::NodeId v) {
        return std::make_unique<GatherAllApp>(inputs[v]);
      },
      sched, {}, net);
  ASSERT_TRUE(result.all_terminated);
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& app = app_at<GatherAllApp>(net, v);
    ASSERT_TRUE(app.complete());
    EXPECT_EQ(app.max_value(), ~0ull);
    // Values indexed by offset from the leader (node 1).
    EXPECT_EQ(*app.values()[0], inputs[1]);
    EXPECT_EQ(*app.values()[1], inputs[2]);
    EXPECT_EQ(*app.values()[2], inputs[0]);
  }
}

/// A simulated algorithm that floods: every node sends `burst` messages to
/// each neighbor at start and counts everything it receives. Exercises
/// multi-message outboxes and many token rotations.
class FloodSimNode final : public SimNode {
 public:
  explicit FloodSimNode(std::size_t burst) : burst_(burst) {}

  void on_start(SimContext& ctx) override {
    for (std::size_t i = 0; i < burst_; ++i) {
      ctx.send(true, Bits{true});
      if (ctx.ring_size() > 1) ctx.send(false, Bits{false});
    }
  }
  void on_message(SimContext&, bool, const Bits&) override { ++received_; }
  std::unique_ptr<SimNode> clone() const override {
    return std::make_unique<FloodSimNode>(*this);
  }

  std::size_t received() const { return received_; }

 private:
  std::size_t burst_;
  std::size_t received_ = 0;
};

TEST(CompositionStress, SimulatorHandlesMessageBursts) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9};
  const std::size_t burst = 5;
  sim::PulseNetwork net;
  sim::RandomScheduler sched(8);
  const auto result = run_composed_with_network(
      ids,
      [burst](sim::NodeId) {
        return std::make_unique<SimulatorApp>(
            std::make_unique<FloodSimNode>(burst));
      },
      sched, {}, net);
  ASSERT_TRUE(result.all_terminated);
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    const auto& app = app_at<SimulatorApp>(net, v);
    const auto& node = dynamic_cast<const FloodSimNode&>(app.node());
    // Each node receives burst messages from each of its two neighbors.
    EXPECT_EQ(node.received(), 2 * burst) << v;
    EXPECT_EQ(app.messages_delivered(), 2 * burst) << v;
  }
}

TEST(CompositionStress, SimulatorBurstsOnSelfLoopRing) {
  sim::GlobalFifoScheduler sched;
  sim::PulseNetwork net;
  const auto result = run_composed_with_network(
      {5},
      [](sim::NodeId) {
        return std::make_unique<SimulatorApp>(
            std::make_unique<FloodSimNode>(3));
      },
      sched, {}, net);
  ASSERT_TRUE(result.all_terminated);
  const auto& app = app_at<SimulatorApp>(net, 0);
  const auto& node = dynamic_cast<const FloodSimNode&>(app.node());
  // n = 1: both neighbors are the node itself; it only sent CW bursts
  // (ring_size() == 1 suppresses the CCW copies), each delivered to itself.
  EXPECT_EQ(node.received(), 3u);
}

/// A simulated algorithm that stays passive forever: the silent-rotation
/// halt must fire after exactly one full quiet rotation.
class PassiveSimNode final : public SimNode {
 public:
  void on_start(SimContext&) override {}
  void on_message(SimContext&, bool, const Bits&) override {}
  std::unique_ptr<SimNode> clone() const override {
    return std::make_unique<PassiveSimNode>(*this);
  }
};

TEST(CompositionStress, PassiveAlgorithmHaltsAfterOneSilentRotation) {
  const std::vector<std::uint64_t> ids{4, 9, 2, 6};
  const std::size_t n = ids.size();
  sim::GlobalFifoScheduler sched;
  const auto result = run_composed(
      ids,
      [](sim::NodeId) {
        return std::make_unique<SimulatorApp>(
            std::make_unique<PassiveSimNode>());
      },
      sched);
  ASSERT_TRUE(result.all_terminated);
  // Bus traffic: survey + marker (n^2+n), then the root passes n times
  // (one silent rotation, n PASSes each costing n+1), then HALT (2n).
  const std::uint64_t expected = (n * n + n) + n * (n + 1) + 2 * n;
  EXPECT_EQ(result.bus_pulses, expected);
}

TEST(CompositionStress, UniqueIdsUnderEveryScheduler) {
  const std::vector<std::uint64_t> ids{7, 12, 5, 9, 2, 11};
  for (auto& named : sim::standard_schedulers(2)) {
    sim::PulseNetwork net;
    const auto result = run_composed_with_network(
        ids, [](sim::NodeId) { return std::make_unique<UniqueIdsApp>(); },
        *named.scheduler, {}, net);
    ASSERT_TRUE(result.all_terminated) << named.name;
    std::set<std::uint64_t> assigned;
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      assigned.insert(app_at<UniqueIdsApp>(net, v).assigned_id());
    }
    EXPECT_EQ(assigned.size(), ids.size()) << named.name;
    EXPECT_EQ(*assigned.begin(), 1u) << named.name;
    EXPECT_EQ(*assigned.rbegin(), ids.size()) << named.name;
  }
}

TEST(CompositionStress, ElectionPhaseAlwaysExactInComposition) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto ids = test::sparse_ids(2 + seed % 6, 40, seed);
    std::uint64_t id_max = 0;
    for (const auto id : ids) id_max = std::max(id_max, id);
    sim::RandomScheduler sched(seed);
    const auto result = run_composed(
        ids, [](sim::NodeId) { return std::make_unique<BroadcastApp>(1); },
        sched);
    ASSERT_TRUE(result.all_terminated) << seed;
    EXPECT_EQ(result.election_pulses,
              co::theorem1_pulses(ids.size(), id_max))
        << seed;
  }
}


TEST(CompositionStress, BusPhaseKeepsOnePulseInFlight) {
  // The bus's core invariant: once every node has switched to phase 2, at
  // most one pulse exists in the entire network at any instant (that is
  // what makes a pulse's direction readable as a bit). Assert it at every
  // event after the switch completes.
  const std::vector<std::uint64_t> ids{6, 11, 3, 9};
  auto net = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<ComposedNode>(
                             ids[v], std::make_unique<GatherAllApp>(v + 1)));
  }
  bool bus_phase = false;
  std::uint64_t checks = 0;
  sim::RunOptions opts;
  opts.on_event = [&](sim::PulseNetwork& n) {
    if (!bus_phase) {
      bool all_switched = true;
      for (sim::NodeId v = 0; v < ids.size(); ++v) {
        all_switched =
            all_switched && n.automaton_as<ComposedNode>(v).bus() != nullptr;
      }
      // The moment the last node (the leader) switches, the network is
      // empty except for the root's first survey pulse.
      if (all_switched) bus_phase = true;
    }
    if (bus_phase) {
      ASSERT_LE(n.in_transit(), 1u);
      ++checks;
    }
  };
  sim::RandomScheduler sched(5);
  const auto report = net.run(sched, opts);
  ASSERT_TRUE(report.all_terminated);
  EXPECT_GT(checks, 100u);
}

/// Records the frame stream an app observes, for cross-node comparison.
class RecordingApp final : public BusApp {
 public:
  void on_ready(std::size_t, std::size_t, bool is_root) override {
    is_root_ = is_root;
  }
  void on_frame(std::size_t from, const Bits& payload) override {
    frames_.emplace_back(from, payload);
  }
  void on_token(BusCtl& ctl) override {
    // Root: one frame, one pass-around, then halt; others: echo a frame
    // derived from their offset, then pass.
    if (!sent_) {
      sent_ = true;
      ctl.send_frame(encode_u64(0xABC + frames_.size()));
      return;
    }
    if (is_root_) {
      ctl.halt();
    } else {
      ctl.pass();
    }
  }

  std::unique_ptr<BusApp> clone() const override {
    return std::make_unique<RecordingApp>(*this);
  }

  const std::vector<std::pair<std::size_t, Bits>>& frames() const {
    return frames_;
  }

 private:
  bool is_root_ = false;
  bool sent_ = false;
  std::vector<std::pair<std::size_t, Bits>> frames_;
};

TEST(CompositionStress, EveryNodeDecodesTheIdenticalFrameStream) {
  const std::vector<std::uint64_t> ids{4, 9, 2, 7, 5};
  for (auto& named : sim::standard_schedulers(2)) {
    sim::PulseNetwork net;
    const auto result = run_composed_with_network(
        ids, [](sim::NodeId) { return std::make_unique<RecordingApp>(); },
        *named.scheduler, {}, net);
    ASSERT_TRUE(result.all_terminated) << named.name;
    const auto& reference = app_at<RecordingApp>(net, 0).frames();
    ASSERT_FALSE(reference.empty());
    for (sim::NodeId v = 1; v < ids.size(); ++v) {
      const auto& frames = app_at<RecordingApp>(net, v).frames();
      ASSERT_EQ(frames.size(), reference.size())
          << named.name << " node " << v;
      for (std::size_t i = 0; i < frames.size(); ++i) {
        EXPECT_EQ(frames[i].first, reference[i].first) << named.name;
        EXPECT_EQ(frames[i].second, reference[i].second) << named.name;
      }
    }
  }
}

}  // namespace
}  // namespace colex::colib
