file(REMOVE_RECURSE
  "CMakeFiles/colexctl.dir/colexctl.cpp.o"
  "CMakeFiles/colexctl.dir/colexctl.cpp.o.d"
  "colexctl"
  "colexctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colexctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
