// Engine equivalence: the fork-based snapshot explorer and the legacy
// replay-from-scratch explorer define the *same* tree (branch on every
// pending channel in ascending channel order), so on every configuration
// they must visit the same leaves in the same order — identical
// ExploreStats and an identical sequence of per-leaf election outcomes.
// This is what licenses keeping only snapshot on the hot path.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "co/alg1.hpp"
#include "co/alg2.hpp"
#include "co/alg3.hpp"
#include "qa/generators.hpp"
#include "qa/properties.hpp"
#include "sim/explore.hpp"
#include "sim/network.hpp"

namespace colex::co {
namespace {

/// Everything observable about a finished execution, flattened to a string:
/// total pulse count plus each node's role. Two leaves with equal
/// signatures reached equal outcomes.
template <typename Alg>
std::string signature(sim::PulseNetwork& net, std::size_t n) {
  std::ostringstream os;
  os << net.total_sent();
  for (sim::NodeId v = 0; v < n; ++v) {
    os << '|' << to_string(net.automaton_as<Alg>(v).role());
  }
  return os.str();
}

/// Explores the same configuration with both engines and requires identical
/// stats and identical per-leaf outcome sequences.
template <typename Alg>
void expect_engines_agree(const std::function<sim::PulseNetwork()>& build,
                          std::size_t n, std::uint64_t budget) {
  sim::ExploreStats stats[2];
  std::vector<std::string> leaves[2];
  for (const auto engine :
       {sim::ExploreEngine::snapshot, sim::ExploreEngine::replay}) {
    const std::size_t e = engine == sim::ExploreEngine::snapshot ? 0 : 1;
    sim::ExploreOptions options;
    options.budget = budget;
    options.engine = engine;
    stats[e] = sim::explore_all_schedules(
        build,
        [&leaves, e, n](sim::PulseNetwork& net) {
          leaves[e].push_back(signature<Alg>(net, n));
        },
        options);
  }
  EXPECT_EQ(stats[0], stats[1]);
  ASSERT_EQ(leaves[0].size(), leaves[1].size());
  for (std::size_t i = 0; i < leaves[0].size(); ++i) {
    ASSERT_EQ(leaves[0][i], leaves[1][i]) << "leaf " << i;
  }
}

template <typename Alg>
std::function<sim::PulseNetwork()> ring_of(
    const std::vector<std::uint64_t>& ids) {
  return [ids] {
    auto net = sim::PulseNetwork::ring(ids.size());
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<Alg>(ids[v]));
    }
    return net;
  };
}

TEST(ExploreEngines, Alg2SingleNode) {
  expect_engines_agree<Alg2Terminating>(ring_of<Alg2Terminating>({3}), 1,
                                        100'000);
}

TEST(ExploreEngines, Alg2TwoNodes) {
  expect_engines_agree<Alg2Terminating>(ring_of<Alg2Terminating>({1, 2}), 2,
                                        2'000'000);
}

TEST(ExploreEngines, Alg2TwoNodesSparseIds) {
  expect_engines_agree<Alg2Terminating>(ring_of<Alg2Terminating>({4, 2}), 2,
                                        4'000'000);
}

TEST(ExploreEngines, Alg2ThreeNodes) {
  expect_engines_agree<Alg2Terminating>(ring_of<Alg2Terminating>({2, 3, 1}),
                                        3, 4'000'000);
}

TEST(ExploreEngines, Alg1ThreeNodes) {
  expect_engines_agree<Alg1Stabilizing>(ring_of<Alg1Stabilizing>({2, 3, 1}),
                                        3, 2'000'000);
}

TEST(ExploreEngines, Alg3ScrambledTwoNodes) {
  const std::vector<std::uint64_t> ids{2, 3};
  const std::vector<bool> flips{true, false};
  const auto build = [ids, flips] {
    auto net = sim::PulseNetwork::ring(2, flips);
    for (sim::NodeId v = 0; v < 2; ++v) {
      net.set_automaton(
          v, std::make_unique<Alg3NonOriented>(ids[v],
                                               Alg3NonOriented::Options{}));
    }
    return net;
  };
  expect_engines_agree<Alg3NonOriented>(build, 2, 4'000'000);
}

TEST(ExploreEngines, TruncationPatternMatchesUnderTightBudget) {
  // With a budget far below the tree size, both engines must truncate at
  // the same tree nodes: equal leaf/truncated counts and equal per-leaf
  // outcomes prefix (both count a tree-node visit as one budget unit).
  expect_engines_agree<Alg2Terminating>(ring_of<Alg2Terminating>({2, 3, 1}),
                                        3, 500);
}

TEST(ExploreEngines, AgreeOnHundredFuzzedConfigurations) {
  // The hand-picked rings above pin known shapes; this drives the same
  // equivalence claim from the fuzzer's generator instead — 100 seeded
  // configurations across every algorithm, duplicate IDs, and port
  // scrambles, each explored by both engines under a tight shared budget
  // (exercising identical truncation as much as identical completion).
  qa::GeneratorOptions opts;
  opts.max_n = 3;
  opts.max_id = 4;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const qa::FuzzCase c = qa::generate_case(seed, opts);
    const std::string diag = qa::check_engine_agreement(c, 25'000);
    EXPECT_TRUE(diag.empty())
        << "seed " << seed << " (" << qa::to_string(c.alg) << ", n=" << c.n()
        << "): " << diag;
  }
}

}  // namespace
}  // namespace colex::co
