// The same algorithms on real OS threads: one thread per node, mutex+cv
// pulse ports, genuine asynchrony. Runs the blocking-style pseudocode
// transcription of Algorithm 2 and checks that the outcome — including the
// exact pulse count — matches the discrete-event simulator.
//
//   ./examples/threaded_ring [n] [repeats]
#include <cstdlib>
#include <iostream>

#include "co/election.hpp"
#include "runtime/blocking_algs.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace colex;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const int repeats = argc > 2 ? std::atoi(argv[2]) : 5;
  if (n == 0 || repeats <= 0) {
    std::cerr << "usage: threaded_ring [n>0] [repeats>0]\n";
    return 1;
  }

  util::Xoshiro256StarStar rng(99);
  std::vector<std::uint64_t> ids;
  while (ids.size() < n) {
    const std::uint64_t candidate = rng.in_range(1, 4 * n);
    bool fresh = true;
    for (const auto existing : ids) fresh = fresh && existing != candidate;
    if (fresh) ids.push_back(candidate);
  }
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);

  // Reference run on the discrete simulator.
  sim::RandomScheduler scheduler(1);
  const auto simulated = co::elect_oriented_terminating(ids, scheduler);
  std::cout << "simulator: leader node " << *simulated.leader << ", "
            << simulated.pulses << " pulses\n";

  bool all_match = true;
  for (int r = 0; r < repeats; ++r) {
    const auto threaded =
        rt::run_on_threads(ids, {}, rt::ThreadAlg::alg2);
    const bool match = threaded.completed &&
                       threaded.leader == simulated.leader &&
                       threaded.pulses == simulated.pulses;
    all_match = all_match && match;
    std::cout << "threads run " << r << ": leader node "
              << (threaded.leader ? std::to_string(*threaded.leader) : "-")
              << ", " << threaded.pulses << " pulses -> "
              << (match ? "matches simulator" : "MISMATCH") << "\n";
  }
  std::cout << "\nexact formula n(2*IDmax+1) = "
            << co::theorem1_pulses(n, id_max) << "\n";
  return all_match ? 0 : 1;
}
