#include "colib/bus.hpp"

#include "util/contracts.hpp"

namespace colex::colib {

namespace {
// Oriented-ring conventions (same as co::oriented): a clockwise pulse
// leaves through Port1 and arrives at Port0.
constexpr sim::Port kCwOut = sim::Port::p1;
constexpr sim::Port kCcwOut = sim::Port::p0;
constexpr sim::Port kCwIn = sim::Port::p0;
}  // namespace

void BusCtl::send_frame(Bits payload) {
  COLEX_EXPECTS(action_ == Action::none);
  action_ = Action::frame;
  payload_ = std::move(payload);
}

void BusCtl::pass() {
  COLEX_EXPECTS(action_ == Action::none);
  action_ = Action::pass;
}

void BusCtl::halt() {
  COLEX_EXPECTS(action_ == Action::none);
  COLEX_EXPECTS(is_root_);  // only the root may shut the bus down
  action_ = Action::halt;
}

BusNode::BusNode(std::unique_ptr<BusApp> app, bool is_root,
                 BusOptions options)
    : app_(std::move(app)), is_root_(is_root), options_(options) {
  COLEX_EXPECTS(app_ != nullptr);
}

BusNode::BusNode(const BusNode& other)
    : app_(other.app_->clone()),
      is_root_(other.is_root_),
      options_(other.options_),
      phase_(other.phase_),
      pulses_sent_(other.pulses_sent_),
      circles_seen_(other.circles_seen_),
      my_offset_(other.my_offset_),
      n_(other.n_),
      holder_(other.holder_),
      awaiting_go_(other.awaiting_go_),
      emitting_(other.emitting_),
      emission_(other.emission_),
      emit_index_(other.emit_index_),
      send_go_after_emission_(other.send_go_after_emission_),
      decoder_(other.decoder_) {}

std::unique_ptr<sim::PulseAutomaton> BusNode::clone() const {
  return clone_bus();
}

std::unique_ptr<BusNode> BusNode::clone_bus() const {
  return std::unique_ptr<BusNode>(new BusNode(*this));
}

void BusNode::start(sim::PulseContext& ctx) { begin(ctx); }

void BusNode::begin(sim::PulseContext& ctx) {
  COLEX_EXPECTS(phase_ == Phase::idle);
  if (is_root_) {
    phase_ = Phase::root_surveying;
    send_pulse(ctx, kCwOut);  // hand the survey token to the CW neighbor
  } else {
    phase_ = Phase::waiting_handoff;
  }
}

void BusNode::react(sim::PulseContext& ctx) {
  bool progress = true;
  while (progress && phase_ != Phase::done) {
    progress = false;
    for (const sim::Port port : {sim::Port::p0, sim::Port::p1}) {
      if (!ctx.recv_pulse(port)) continue;
      progress = true;
      if (phase_ == Phase::stream) {
        handle_stream(ctx, port);
      } else {
        handle_survey(ctx, port);
      }
      if (phase_ == Phase::done) return;
    }
  }
}

void BusNode::handle_survey(sim::PulseContext& ctx, sim::Port port) {
  const bool is_cw_pulse = port == kCwIn;
  switch (phase_) {
    case Phase::waiting_handoff:
      if (is_cw_pulse) {
        // The survey token: we hold it now. Emit our census circle.
        my_offset_ = circles_seen_ + 1;
        phase_ = Phase::holding_circle;
        send_pulse(ctx, kCcwOut);
      } else {
        ++circles_seen_;  // someone else's census circle: forward it
        send_pulse(ctx, kCcwOut);
      }
      return;
    case Phase::holding_circle:
      // Only our own census circle can be in flight.
      COLEX_ASSERT(!is_cw_pulse);
      ++circles_seen_;  // count our own circle too
      phase_ = Phase::after_held;
      send_pulse(ctx, kCwOut);  // hand the token onward
      return;
    case Phase::after_held:
      if (is_cw_pulse) {
        // The root's survey-end marker.
        n_ = circles_seen_ + 1;
        send_pulse(ctx, kCwOut);  // forward the marker
        enter_stream(ctx);
      } else {
        ++circles_seen_;
        send_pulse(ctx, kCcwOut);
      }
      return;
    case Phase::root_surveying:
      if (is_cw_pulse) {
        // The survey token made it all the way back: survey complete.
        n_ = circles_seen_ + 1;
        phase_ = Phase::root_marker;
        send_pulse(ctx, kCwOut);  // emit the survey-end marker
      } else {
        ++circles_seen_;
        send_pulse(ctx, kCcwOut);
      }
      return;
    case Phase::root_marker:
      COLEX_ASSERT(is_cw_pulse);  // our marker returning
      enter_stream(ctx);
      return;
    case Phase::idle:
    case Phase::stream:
    case Phase::done:
      COLEX_ASSERT(false);  // unreachable
  }
}

void BusNode::enter_stream(sim::PulseContext& ctx) {
  phase_ = Phase::stream;
  holder_ = 0;  // the root holds the token first
  app_->on_ready(my_offset_, n_, is_root_);
  if (holder_ == my_offset_) {
    COLEX_ASSERT(is_root_);
    run_token_action(ctx);
  }
}

void BusNode::handle_stream(sim::PulseContext& ctx, sim::Port port) {
  const bool is_cw_pulse = port == kCwIn;

  // The private "go" pulse after a PASS: only the new holder receives it,
  // and it is control-plane only — neither forwarded nor decoded.
  if (awaiting_go_ && !emitting_ && is_cw_pulse) {
    awaiting_go_ = false;
    run_token_action(ctx);
    return;
  }

  const bool bit = !is_cw_pulse;  // CW pulse = 0, CCW pulse = 1

  if (emitting_) {
    // Our own bit completed its circle; absorb it and keep the decoders in
    // lockstep by decoding it like everyone else did.
    feed_decoder(ctx, bit);
    if (phase_ == Phase::done) return;
    if (emit_index_ < emission_.size()) {
      emit_next_bit(ctx);
      return;
    }
    // Emission complete.
    emitting_ = false;
    emission_.clear();
    emit_index_ = 0;
    if (send_go_after_emission_) {
      send_go_after_emission_ = false;
      if (!options_.unsafe_skip_go) {
        send_pulse(ctx, kCwOut);  // wake the new holder
      } else if (awaiting_go_) {
        // Ablation mode, n == 1: we passed the token to ourselves.
        awaiting_go_ = false;
        run_token_action(ctx);
      }
      return;
    }
    // The action was DATA: we keep the token and choose again.
    run_token_action(ctx);
    return;
  }

  // Someone else's bit: forward it in its direction of travel, then decode.
  send_pulse(ctx, is_cw_pulse ? kCwOut : kCcwOut);
  feed_decoder(ctx, bit);
}

void BusNode::feed_decoder(sim::PulseContext& ctx, bool bit) {
  const auto frame = decoder_.feed(bit);
  if (!frame) return;
  switch (frame->kind) {
    case Frame::Kind::pass:
      on_pass_decoded(ctx);  // the token moves one hop clockwise
      return;
    case Frame::Kind::halt:
      // HALT: last pulse of the bus's lifetime.
      phase_ = Phase::done;
      app_->on_halt();
      return;
    case Frame::Kind::data:
      app_->on_frame(holder_, frame->payload);
      return;
  }
}

void BusNode::on_pass_decoded(sim::PulseContext& ctx) {
  holder_ = (holder_ + 1) % n_;
  if (holder_ != my_offset_) return;
  if (!options_.unsafe_skip_go) {
    awaiting_go_ = true;
    return;
  }
  // ABLATION: act immediately. If we are the emitter whose own pass bit
  // just returned (n == 1), defer to the emission-complete path.
  if (emitting_) {
    awaiting_go_ = true;
    return;
  }
  run_token_action(ctx);
}

void BusNode::run_token_action(sim::PulseContext& ctx) {
  BusCtl ctl(is_root_);
  app_->on_token(ctl);
  COLEX_EXPECTS(ctl.action_ != BusCtl::Action::none);
  switch (ctl.action_) {
    case BusCtl::Action::frame:
      emission_ = encode_data_frame(ctl.payload_);
      break;
    case BusCtl::Action::pass:
      emission_ = encode_pass_frame();
      send_go_after_emission_ = true;
      break;
    case BusCtl::Action::halt:
      emission_ = encode_halt_frame();
      break;
    case BusCtl::Action::none:
      COLEX_ASSERT(false);
  }
  emitting_ = true;
  emit_index_ = 0;
  emit_next_bit(ctx);
}

void BusNode::emit_next_bit(sim::PulseContext& ctx) {
  COLEX_ASSERT(emit_index_ < emission_.size());
  const bool bit = emission_[emit_index_++];
  send_pulse(ctx, bit ? kCcwOut : kCwOut);  // 0 travels CW, 1 travels CCW
}

void BusNode::send_pulse(sim::PulseContext& ctx, sim::Port p) {
  ++pulses_sent_;
  ctx.send(p);
}

}  // namespace colex::colib
