# Empty compiler generated dependencies file for test_integration_deep.
# This may be replaced when dependencies are built.
