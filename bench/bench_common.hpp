// Shared output helpers for the experiment harness. Every bench binary
// regenerates one experiment from DESIGN.md's index and prints a banner,
// the paper's claim, and a result table, so `for b in build/bench/*; do $b;
// done` produces a full, self-describing reproduction report.
#pragma once

#include <iostream>
#include <string>

namespace colex::bench {

inline void banner(const std::string& experiment, const std::string& claim) {
  std::cout << "\n" << std::string(78, '=') << "\n";
  std::cout << experiment << "\n";
  std::cout << "paper claim: " << claim << "\n";
  std::cout << std::string(78, '=') << "\n\n";
}

inline void verdict(bool ok, const std::string& text) {
  std::cout << "\n[" << (ok ? "REPRODUCED" : "MISMATCH") << "] " << text
            << "\n";
}

}  // namespace colex::bench
