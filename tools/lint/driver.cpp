#include "lint/driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "lint/classes.hpp"

namespace colex::lint {

namespace {

namespace fs = std::filesystem;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".hxx";
}

/// Expands files/directories into a sorted, deduplicated file list.
std::vector<std::string> collect_files(const std::vector<std::string>& paths,
                                       std::vector<std::string>& errors) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    const fs::path path(p);
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           it != end && !ec; it.increment(ec)) {
        const fs::path& entry = it->path();
        const std::string name = entry.filename().string();
        if (it->is_directory() && (name == "build" || name.rfind("build-", 0) == 0 ||
                                   (!name.empty() && name[0] == '.'))) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable_extension(entry)) {
          files.push_back(entry.generic_string());
        }
      }
      if (ec) errors.push_back(p + ": " + ec.message());
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path.generic_string());
    } else {
      errors.push_back(p + ": not a file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool load_sources(const std::vector<std::string>& paths,
                  std::vector<SourceFile>& out,
                  std::vector<std::string>& errors) {
  const std::vector<std::string> files = collect_files(paths, errors);
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      errors.push_back(file + ": cannot open");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    out.push_back(make_source_file(file, buf.str()));
  }
  if (out.empty() && errors.empty()) {
    errors.push_back("no lintable files found");
  }
  return errors.empty();
}

struct SplitFindings {
  std::vector<Finding> reported;
  std::vector<Finding> suppressed;
};

SplitFindings apply_suppressions(const std::vector<SourceFile>& files,
                                 std::vector<Finding> all) {
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : files) by_path[f.path] = &f;
  SplitFindings split;
  for (Finding& finding : all) {
    const auto it = by_path.find(finding.file);
    if (it != by_path.end() &&
        it->second->suppressed(finding.rule, finding.line)) {
      split.suppressed.push_back(std::move(finding));
    } else {
      split.reported.push_back(std::move(finding));
    }
  }
  return split;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_findings(std::ostream& os, const std::vector<Finding>& findings) {
  os << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "" : ",") << "\n    {\"rule\":\"" << f.rule
       << "\",\"pass\":\"" << f.pass << "\",\"file\":\"" << json_escape(f.file)
       << "\",\"line\":" << f.line << ",\"message\":\""
       << json_escape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]" : "\n  ]");
}

}  // namespace

ScanOutcome scan_paths(const std::vector<std::string>& paths,
                       std::size_t workers) {
  ScanOutcome outcome;
  std::vector<SourceFile> files;
  load_sources(paths, files, outcome.errors);
  outcome.files_scanned = files.size();
  if (files.empty()) return outcome;
  const ProjectIndex project = build_project_index(files);
  SplitFindings split =
      apply_suppressions(files, run_rules(files, project, workers));
  outcome.findings = std::move(split.reported);
  outcome.suppressed = std::move(split.suppressed);
  return outcome;
}

ScanOutcome scan_paths(const std::vector<std::string>& paths) {
  return scan_paths(paths, 1);
}

SelfTestOutcome run_self_test(const std::vector<std::string>& paths) {
  SelfTestOutcome result;
  std::vector<SourceFile> files;
  std::vector<std::string> errors;
  load_sources(paths, files, errors);
  for (const std::string& e : errors) result.problems.push_back(e);
  if (files.empty()) {
    result.problems.push_back("self-test: no fixture files");
    return result;
  }
  const ProjectIndex project = build_project_index(files);
  SplitFindings split = apply_suppressions(files, run_rules(files, project));

  // (file, line, rule) -> count, for both expectation kinds.
  using Key = std::pair<std::string, std::pair<int, std::string>>;
  auto keyed = [](const std::vector<Finding>& fs) {
    std::map<Key, int> m;
    for (const Finding& f : fs) ++m[{f.file, {f.line, f.rule}}];
    return m;
  };
  std::map<Key, int> reported = keyed(split.reported);
  std::map<Key, int> suppressed = keyed(split.suppressed);

  auto check = [&result](const char* kind, std::map<Key, int>& actual,
                         const std::string& file, int line,
                         const std::string& rule) {
    ++result.expectations;
    result.rules_exercised.insert(rule);
    const Key key{file, {line, rule}};
    auto it = actual.find(key);
    if (it == actual.end() || it->second == 0) {
      result.problems.push_back(file + ":" + std::to_string(line) +
                                ": expected " + kind + " " + rule +
                                " finding was not produced");
      return;
    }
    --it->second;
  };

  for (const SourceFile& f : files) {
    for (const auto& [line, rules] : f.expect) {
      for (const std::string& rule : rules) {
        check("reported", reported, f.path, line, rule);
      }
    }
    for (const auto& [line, rules] : f.expect_suppressed) {
      for (const std::string& rule : rules) {
        check("suppressed", suppressed, f.path, line, rule);
      }
    }
  }
  for (const auto& [key, count] : reported) {
    for (int k = 0; k < count; ++k) {
      result.problems.push_back(key.first + ":" +
                                std::to_string(key.second.first) +
                                ": unexpected " + key.second.second +
                                " finding (no expect marker)");
    }
  }
  for (const auto& [key, count] : suppressed) {
    for (int k = 0; k < count; ++k) {
      result.problems.push_back(
          key.first + ":" + std::to_string(key.second.first) +
          ": suppressed " + key.second.second +
          " finding lacks an expect-suppressed marker");
    }
  }
  result.ok = result.problems.empty() && result.expectations > 0;
  return result;
}

void print_human(std::ostream& os, const ScanOutcome& outcome) {
  for (const std::string& e : outcome.errors) {
    os << "colex-lint: error: " << e << "\n";
  }
  for (const Finding& f : outcome.findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
  }
  os << "colex-lint: " << outcome.files_scanned << " files, "
     << outcome.findings.size() << " finding(s), "
     << outcome.suppressed.size() << " suppressed\n";
}

void print_json(std::ostream& os, const ScanOutcome& outcome) {
  // "tool"/"version" are kept for v1 consumers; "schema" names the v2
  // shape (per-finding "pass" field).
  os << "{\n  \"tool\": \"colex-lint\",\n  \"version\": 1,\n"
     << "  \"schema\": \"colex-lint-v2\",\n"
     << "  \"files_scanned\": " << outcome.files_scanned << ",\n"
     << "  \"findings\": ";
  json_findings(os, outcome.findings);
  os << ",\n  \"suppressed\": ";
  json_findings(os, outcome.suppressed);
  os << ",\n  \"errors\": [";
  for (std::size_t i = 0; i < outcome.errors.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << json_escape(outcome.errors[i])
       << "\"";
  }
  os << "]\n}\n";
}

int exit_code(const ScanOutcome& outcome) {
  if (!outcome.errors.empty()) return 2;
  return outcome.findings.empty() ? 0 : 1;
}

}  // namespace colex::lint
