// Fixture: T002 — blocking calls reachable from a coroutine body.
//
// The `src/coro/` subdirectory mirrors the rule's expansion scope: the
// call-graph BFS only follows edges into functions defined under src/coro,
// because that is where coroutine bodies actually execute. `t002_driver`
// uses co_return, making it a root; the helpers it calls contain the
// blocking sinks.
#include <mutex>
#include <thread>

namespace fixture_t002 {

std::mutex& t002_mu();
std::thread& t002_thread();

void t002_block_on_mutex() {
  std::lock_guard<std::mutex> guard(t002_mu());  // colex-lint: expect(T002)
}

void t002_block_on_join() {
  t002_thread().join();  // colex-lint: expect(T002)
}

void t002_brief_handshake() {
  std::lock_guard<std::mutex> guard(t002_mu());  // colex-lint: allow(T002) expect-suppressed(T002) fixture: stands in for an empty-critical-section wake handshake
}

struct T002Task {
  struct promise_type;
};

T002Task t002_driver() {
  t002_block_on_mutex();
  t002_block_on_join();
  t002_brief_handshake();
  co_return;
}

}  // namespace fixture_t002
