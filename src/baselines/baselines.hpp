// Classical leader-election baselines on asynchronous rings with reliable,
// content-carrying channels (paper §1.2 related work). All algorithms
// terminate with every node knowing the leader's ID (a final announcement
// circulation is appended where the textbook algorithm only informs the
// winner itself).
//
// Unlike the content-oblivious algorithms, terminated baseline nodes may
// still receive stray messages (e.g. Hirschberg-Sinclair probes that were in
// flight behind the announcement). With content-carrying messages this is
// harmless — a tagged message can be recognized and discarded — which is
// precisely the composability luxury the fully defective model lacks
// (paper §1.1). `BaselineResult::late_deliveries` exposes the count.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baselines/msg.hpp"
#include "sim/scheduler.hpp"

namespace colex::baselines {

struct BaselineResult {
  /// True iff exactly one node self-identified as leader and every node
  /// agrees on that leader's ID.
  bool ok = false;
  std::optional<sim::NodeId> leader;  ///< ring index of the winner
  std::uint64_t leader_id = 0;        ///< the agreed leader ID
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  bool all_terminated = false;
  std::uint64_t late_deliveries = 0;  ///< messages that reached a terminated node
};

/// Le Lann (1977): every ID circulates the full ring; O(n^2) messages.
BaselineResult lelann(const std::vector<std::uint64_t>& ids,
                      sim::Scheduler& scheduler,
                      const MsgRunOptions& opts = {});

/// Chang-Roberts (1979): smaller IDs are filtered; O(n^2) worst case,
/// O(n log n) on average.
BaselineResult chang_roberts(const std::vector<std::uint64_t>& ids,
                             sim::Scheduler& scheduler,
                             const MsgRunOptions& opts = {});

/// Peterson (1982): unidirectional, O(n log n) worst case.
BaselineResult peterson(const std::vector<std::uint64_t>& ids,
                        sim::Scheduler& scheduler,
                        const MsgRunOptions& opts = {});

/// Hirschberg-Sinclair (1980): bidirectional doubling probes, O(n log n).
BaselineResult hirschberg_sinclair(const std::vector<std::uint64_t>& ids,
                                   sim::Scheduler& scheduler,
                                   const MsgRunOptions& opts = {});

/// Franklin (1982): bidirectional rounds between active neighbors,
/// O(n log n).
BaselineResult franklin(const std::vector<std::uint64_t>& ids,
                        sim::Scheduler& scheduler,
                        const MsgRunOptions& opts = {});

/// Itai-Rodeh (1990): randomized election on an *anonymous* ring of known
/// size n; terminates with probability 1 and always elects exactly one
/// leader (Las Vegas). The paper cites it as the anonymous-ring baseline
/// that needs knowledge of n, unlike Theorem 3.
BaselineResult itai_rodeh(std::size_t n, std::uint64_t seed,
                          sim::Scheduler& scheduler,
                          const MsgRunOptions& opts = {});

}  // namespace colex::baselines
