// Concurrency-discipline pass (rules T001–T004) for the hand-rolled
// synchronization the substrates grew in PRs 6–9: SPSC channels, the
// Chase-Lev deque, Dekker sleep/wake, the seqlock flight recorder, and the
// Transport/PulsePort backend surface.
//
//   T001  unpaired memory orders on a class-scope atomic member: a
//         release store no acquire/seq_cst load ever observes (or an
//         acquire load no release/seq_cst store ever publishes) cannot
//         synchronize-with anything — the fence is decorative.
//         RMWs (fetch_*, exchange, compare_exchange_*) count on both
//         sides; an orderless call defaults to seq_cst.
//   T002  a blocking call (mutex locks, condvar waits, sleeps, joins,
//         send_all/recv_byte syscall wrappers) lexically inside a
//         coroutine body, or reachable from one on the call graph through
//         functions defined under src/coro — a worker thread that blocks
//         stalls every parked node it is supposed to resume.
//   T003  seqlock writer shape (obs/flight): a function that stores
//         payload atomics of a class carrying a *version* atomic must
//         bracket every payload store between two version stores (the
//         odd/even protocol readers validate against).
//   T004  rt::Transport / rt::PulsePort structural conformance: a class
//         implementing most-but-not-all of either surface (matched by
//         method name + parameter count) is a signature drift that
//         templates only catch when instantiated — which for a backend
//         stub may be never.
//
// All four run single-threaded in the driver's sequential phase: they need
// project-wide joins (use sites across files, call-graph reachability) and
// are cheap next to the per-file scans.
#pragma once

#include <vector>

#include "lint/callgraph.hpp"
#include "lint/rules.hpp"
#include "lint/symbols.hpp"

namespace colex::lint {

void run_concurrency_rules(const std::vector<SourceFile>& files,
                           const ProjectIndex& project,
                           const SymbolTable& symbols, const CallGraph& graph,
                           std::vector<Finding>& out);

}  // namespace colex::lint
