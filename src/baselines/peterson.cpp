// Peterson (1982): unidirectional O(n log n) election. Active nodes carry
// temporary IDs; in each phase an active node compares the temp ID of its
// active predecessor (t1) against its own and its pre-predecessor's (t2),
// surviving only as the local maximum. At least half the active nodes drop
// to relay status per phase. With per-channel FIFO no phase numbers are
// needed: message order alone disambiguates.
#include <memory>
#include <vector>

#include "baselines/run_ring.hpp"
#include "util/contracts.hpp"

namespace colex::baselines {
namespace {

class PetersonNode final : public BaselineNode {
 public:
  explicit PetersonNode(std::uint64_t id) : id_(id), tid_(id) {}

  std::unique_ptr<MsgAutomaton> clone() const override {
    return std::make_unique<PetersonNode>(*this);
  }

  void start(MsgContext& ctx) override { send_tid(ctx, tid_); }

  void react(MsgContext& ctx) override {
    while (auto m = ctx.recv(sim::Port::p0)) {
      if (terminated()) return;
      if (m->kind == Msg::Kind::announce) {
        on_announce(ctx, *m);
        continue;
      }
      COLEX_ASSERT(m->kind == Msg::Kind::candidate);
      if (relay_) {
        emit(ctx, kCw, *m);
        continue;
      }
      if (expecting_first_) {
        if (m->value == tid_) {
          // Own temp ID made it all the way around: sole survivor.
          start_announce(ctx, id_);
          continue;
        }
        t1_ = m->value;
        send_tid(ctx, t1_);
        expecting_first_ = false;
      } else {
        const std::uint64_t t2 = m->value;
        expecting_first_ = true;
        if (t1_ > tid_ && t1_ > t2) {
          tid_ = t1_;  // adopt the winning temp ID, stay active
          send_tid(ctx, tid_);
        } else {
          relay_ = true;
        }
      }
    }
  }

 private:
  void send_tid(MsgContext& ctx, std::uint64_t value) {
    Msg m;
    m.kind = Msg::Kind::candidate;
    m.value = value;
    emit(ctx, kCw, m);
  }

  std::uint64_t id_;
  std::uint64_t tid_;
  std::uint64_t t1_ = 0;
  bool expecting_first_ = true;
  bool relay_ = false;
};

}  // namespace

BaselineResult peterson(const std::vector<std::uint64_t>& ids,
                        sim::Scheduler& scheduler,
                        const MsgRunOptions& opts) {
  COLEX_EXPECTS(!ids.empty());
  return detail::run_ring(
      ids.size(),
      [&ids](sim::NodeId v) { return std::make_unique<PetersonNode>(ids[v]); },
      scheduler, opts);
}

}  // namespace colex::baselines
