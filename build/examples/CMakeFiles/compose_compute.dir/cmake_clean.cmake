file(REMOVE_RECURSE
  "CMakeFiles/compose_compute.dir/compose_compute.cpp.o"
  "CMakeFiles/compose_compute.dir/compose_compute.cpp.o.d"
  "compose_compute"
  "compose_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compose_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
