// The Section 1.1 relaxation of quiescent termination: if at most r stray
// pulses of a preceding protocol can still reach a node (per incoming
// channel) after it switched to this one, the protocol can be run in an
// "altered form where nodes send r+1 copies of each message, and process
// arriving messages in groups of r+1 messages as well" — at an r-fold
// increase in message complexity.
//
// Why grouping works: channels are FIFO, so the s <= r strays on a channel
// arrive before every legitimate pulse, and the r+1 copies of each logical
// pulse are consecutive. Group k (arrivals (k-1)(r+1)+1 .. k(r+1)) then
// always contains at least one copy of logical pulse k and none of pulse
// k+1, so delivering one logical pulse per completed group reproduces the
// unreplicated execution exactly — merely skewed at most r arrivals early.
//
// ReplicatedAdapter wraps any pulse automaton with this transformation; it
// is how a *non*-quiescently-terminating first algorithm could still be
// composed, and it makes the r-fold overhead measurable (bench E11).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/network.hpp"

namespace colex::co {

class ReplicatedAdapter final : public sim::PulseAutomaton {
 public:
  /// Wraps `inner`, tolerating up to `r` stray leading pulses per incoming
  /// channel. r = 0 is the identity transformation.
  ReplicatedAdapter(std::unique_ptr<sim::PulseAutomaton> inner, unsigned r);

  void start(sim::PulseContext& ctx) override;
  void react(sim::PulseContext& ctx) override;
  bool terminated() const override { return inner_->terminated(); }
  std::unique_ptr<sim::PulseAutomaton> clone() const override;

  sim::PulseAutomaton& inner() { return *inner_; }
  const sim::PulseAutomaton& inner() const { return *inner_; }

  /// Typed access to the wrapped algorithm.
  template <typename T>
  const T& inner_as() const {
    return dynamic_cast<const T&>(*inner_);
  }

  std::uint64_t physical_received(sim::Port p) const {
    return physical_received_[sim::index(p)];
  }

 private:
  /// The Context the inner automaton sees: logical pulses.
  class GroupContext final : public sim::PulseContext {
   public:
    GroupContext(sim::PulseContext& outer, ReplicatedAdapter& adapter)
        : outer_(outer), adapter_(adapter) {}

    sim::NodeId self() const override { return outer_.self(); }
    std::size_t queued(sim::Port p) const override {
      return adapter_.logical_available(p);
    }
    std::optional<sim::Pulse> recv(sim::Port p) override {
      if (adapter_.logical_available(p) == 0) return std::nullopt;
      ++adapter_.logical_consumed_[sim::index(p)];
      return sim::Pulse{};
    }
    using sim::PulseContext::send;
    void send(sim::Port p, sim::Pulse payload) override {
      for (unsigned i = 0; i <= adapter_.r_; ++i) outer_.send(p, payload);
    }
    bool serialized_reactions() const override {
      return outer_.serialized_reactions();
    }

   private:
    sim::PulseContext& outer_;
    ReplicatedAdapter& adapter_;
  };

  std::size_t logical_available(sim::Port p) const {
    const auto i = sim::index(p);
    return physical_received_[i] / (r_ + 1) - logical_consumed_[i];
  }

  /// Moves every physically delivered pulse into the group counters.
  void absorb_physical(sim::PulseContext& ctx);

  std::unique_ptr<sim::PulseAutomaton> inner_;
  unsigned r_;
  std::uint64_t physical_received_[2] = {0, 0};
  std::uint64_t logical_consumed_[2] = {0, 0};
};

}  // namespace colex::co
