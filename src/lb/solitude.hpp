// Lower-bound machinery (paper §6).
//
// Definition 21: the *solitude pattern* of an algorithm for a given ID is
// the sequence of incoming pulses observed by a single node forming a ring
// with itself (n = 1, its CW port wired to its own CCW port), under the
// scheduler that delivers pulses in send order with CW priority. The pattern
// is encoded as a binary string: 0 for a CW pulse, 1 for a CCW pulse.
//
// Lemma 22 shows each ID must have a unique solitude pattern; Lemma 23 /
// Corollary 24 turn that into the Theorem 4 / Theorem 20 lower bound of
// n * floor(log2(k/n)) pulses via shared prefixes. This module extracts
// solitude patterns from any automaton factory, verifies uniqueness, and
// finds maximal shared-prefix ID groups.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/network.hpp"

namespace colex::lb {

/// Builds the automaton a node with the given ID would run.
using AutomatonFactory =
    std::function<std::unique_ptr<sim::PulseAutomaton>(std::uint64_t id)>;

struct SolitudePattern {
  std::uint64_t id = 0;
  /// '0' = CW pulse received, '1' = CCW pulse received (Definition 21).
  std::string bits;
  bool terminated = false;  ///< the lone node terminated
  bool quiescent = false;   ///< the run reached quiescence
};

/// Runs `factory(id)` on the one-node ring under the Definition 21 scheduler
/// and records the delivery pattern. `max_events` bounds non-terminating
/// executions.
SolitudePattern solitude_pattern(const AutomatonFactory& factory,
                                 std::uint64_t id,
                                 std::uint64_t max_events = 1u << 20);

/// Extracts patterns for ids lo..hi (inclusive).
std::vector<SolitudePattern> solitude_patterns(const AutomatonFactory& factory,
                                               std::uint64_t lo,
                                               std::uint64_t hi,
                                               std::uint64_t max_events = 1u
                                                                          << 20);

/// Lemma 22 check: true iff all patterns are pairwise distinct.
bool all_patterns_distinct(const std::vector<SolitudePattern>& patterns);

/// Length of the longest common prefix of two strings.
std::size_t common_prefix(const std::string& a, const std::string& b);

struct PrefixGroup {
  std::vector<std::uint64_t> ids;   ///< group members (size n)
  std::size_t prefix_length = 0;    ///< shared prefix among all members
};

/// Corollary 24, constructively: among the given patterns, finds a group of
/// `n` IDs whose patterns share the longest possible common prefix, greedily
/// by walking the prefix trie. The returned prefix length is at least
/// floor(log2(k/n)) when `patterns.size() >= n` patterns of distinct IDs are
/// supplied (k = patterns.size()).
PrefixGroup best_prefix_group(const std::vector<SolitudePattern>& patterns,
                              std::size_t n);

/// Lemma 22's proof device: two nodes with IDs `id_a` and `id_b` on a
/// 2-ring, driven by the Definition 21 scheduler (send order, CW priority,
/// equal delays). Records the pulse sequence each node observes. If the two
/// IDs had identical solitude patterns, both nodes would replay their
/// solitude executions verbatim and both would output Leader — the
/// contradiction that proves patterns must be unique.
struct TwoNodeObservation {
  std::string observed_a;  ///< deliveries at node 0, encoded like a pattern
  std::string observed_b;  ///< deliveries at node 1
  bool quiescent = false;
  bool hit_event_limit = false;
};
TwoNodeObservation two_node_observation(const AutomatonFactory& factory,
                                        std::uint64_t id_a,
                                        std::uint64_t id_b,
                                        std::uint64_t max_events = 1u << 20);

}  // namespace colex::lb
