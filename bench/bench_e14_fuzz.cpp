// E14 — Fuzz-campaign throughput and planted-defect detection cost. The
// property harness (src/qa) is only useful if a meaningful campaign fits in
// a CI smoke budget, so this bench measures (a) cases/second for clean and
// faulty campaigns over the standard generator envelope, (b) the pulse
// distribution those campaigns actually exercise, and (c) the full
// find -> shrink -> minimal-repro cost for the planted off-by-one bound
// defect (the harness's built-in self-test, DESIGN.md §7).
//
// Relation to E12: exhaustive exploration proves properties over ALL
// schedules of tiny rings; fuzzing samples deep biased-walk schedules of
// larger rings and fault envelopes E12 cannot enumerate. The two meet at
// the cross-engine agreement oracle, which fuzz seeds drive directly in
// test_explore_engines.cpp.
#include <cstring>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "qa/fuzzer.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

qa::CampaignReport timed_campaign(const qa::CampaignOptions& options,
                                  const char* label, util::Table& table,
                                  bench::JsonReport& report) {
  bench::WallTimer timer;
  const qa::CampaignReport r = qa::run_campaign(options);
  const double secs = timer.seconds();
  const double rate = secs > 0 ? static_cast<double>(r.cases_run) / secs : 0;
  table.add_row({label, std::to_string(r.cases_run),
                 std::to_string(r.clean_cases),
                 std::to_string(r.faulty_cases),
                 std::to_string(r.counterexamples.size()),
                 util::Table::fixed(rate, 0),
                 util::Table::fixed(r.pulses.p50, 0),
                 util::Table::fixed(r.pulses.p99, 0)});
  bench::Json row = bench::Json::object();
  row.set("campaign", std::string(label))
      .set("cases", static_cast<std::uint64_t>(r.cases_run))
      .set("counterexamples",
           static_cast<std::uint64_t>(r.counterexamples.size()))
      .set("cases_per_second", rate)
      .set("wall_seconds", secs)
      .set("pulses_p50", r.pulses.p50)
      .set("pulses_p99", r.pulses.p99)
      .set("pulses_max", r.pulses.max);
  report.add_result(std::move(row));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const std::size_t cases = smoke ? 60 : 400;

  bench::banner(
      "E14 — property-fuzz campaigns: throughput and planted-defect cost",
      "seeded generate->check->shrink sustains CI-smoke-scale campaigns; "
      "the planted bound defect is found on the first seed and shrinks to "
      "the one-node ring");

  bench::JsonReport report("E14", "fuzz campaign throughput");
  bench::apply_json_flag(report, argc, argv);
  bench::WallTimer total;

  util::Table table({"campaign", "cases", "clean", "faulty", "cx", "cases/s",
                     "pulses p50", "pulses p99"});

  qa::CampaignOptions clean;
  clean.cases = cases;
  const qa::CampaignReport clean_report =
      timed_campaign(clean, "clean (all algs)", table, report);

  qa::CampaignOptions faulty;
  faulty.cases = cases;
  faulty.generator.fault_fraction = 1.0;
  const qa::CampaignReport faulty_report =
      timed_campaign(faulty, "faulty (plan on every case)", table, report);

  qa::CampaignOptions planted;
  planted.cases = cases;
  planted.generator.algorithms = {qa::Algorithm::alg2};
  planted.properties.planted_bound_bug = true;
  bench::WallTimer planted_timer;
  const qa::CampaignReport planted_report = qa::run_campaign(planted);
  const double planted_secs = planted_timer.seconds();
  table.add_row({"planted bug (alg2)",
                 std::to_string(planted_report.cases_run), "-", "-",
                 std::to_string(planted_report.counterexamples.size()), "-",
                 "-", "-"});
  table.print(std::cout);

  bool planted_ok = false;
  if (!planted_report.counterexamples.empty()) {
    const qa::Counterexample& cx = planted_report.counterexamples.front();
    planted_ok = cx.minimal.n() == 1 && cx.minimal.clean();
    std::cout << "\nplanted defect: found at seed " << cx.seed << ", shrunk "
              << cx.original.n() << "-node case to " << cx.minimal.n()
              << "-node in " << cx.shrink_stats.attempts << " attempts ("
              << cx.shrink_stats.improvements << " improvements, "
              << util::Table::fixed(planted_secs * 1e3, 1) << " ms total)\n";
    bench::Json row = bench::Json::object();
    row.set("campaign", std::string("planted"))
        .set("found_at_seed", cx.seed)
        .set("shrink_attempts",
             static_cast<std::uint64_t>(cx.shrink_stats.attempts))
        .set("minimal_n", static_cast<std::uint64_t>(cx.minimal.n()))
        .set("wall_seconds", planted_secs);
    report.add_result(std::move(row));
  }

  report.finish(total.seconds());

  bench::verdict(
      clean_report.ok() && faulty_report.ok() && planted_ok,
      "campaigns find no real counterexamples, and the planted defect is "
      "detected and minimized to the one-node ring");
  return clean_report.ok() && faulty_report.ok() && planted_ok ? 0 : 1;
}
