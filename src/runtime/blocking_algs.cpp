#include "runtime/blocking_algs.hpp"

#include <thread>

#include "util/contracts.hpp"

namespace colex::rt {

// The synchronous entry points instantiate the template coroutines over
// BlockingPortAdapter, whose wait_any() blocks inside await_ready() and
// never suspends: one resume runs the algorithm to completion on the
// calling thread, byte-for-byte the pre-coroutine blocking behavior.

BlockingOutcome run_alg1_blocking(NodeIo io, std::uint64_t id) {
  return drive_blocking(run_alg1(BlockingPortAdapter(io), id));
}

BlockingOutcome run_alg2_blocking(NodeIo io, std::uint64_t id) {
  return drive_blocking(run_alg2(BlockingPortAdapter(io), id));
}

BlockingOutcome run_alg3_blocking(NodeIo io, std::uint64_t id,
                                  co::IdScheme scheme) {
  return drive_blocking(run_alg3(BlockingPortAdapter(io), id, scheme));
}

ThreadRunResult run_on_threads(const std::vector<std::uint64_t>& ids,
                               const std::vector<bool>& port_flips,
                               ThreadAlg alg, std::uint64_t timeout_ms,
                               ChaosScript chaos, obs::Registry* metrics) {
  COLEX_EXPECTS(!ids.empty());
  const std::size_t n = ids.size();
  ThreadRing ring(n, port_flips);
  ring.set_metrics(metrics);  // before any worker starts

  ThreadRunResult result;
  result.outcomes.resize(n);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    workers.emplace_back([&ring, &result, &ids, alg, v] {
      BlockingOutcome out;
      std::uint64_t restarts = 0;
      for (;;) {
        // Read the epoch before binding the io handle: if a crash slips in
        // between, the handle is dead and the epoch comparison below still
        // routes us into the recovery path.
        const std::uint64_t epoch = ring.crash_epoch(v);
        out = drive_blocking(
            spawn_alg(alg, BlockingPortAdapter(ring.io(v)), ids[v]));
        if (ring.crash_epoch(v) == epoch) break;  // normal stop/termination
        // The node crash-stopped mid-run: whatever the dead incarnation
        // computed is gone with it.
        out = BlockingOutcome{};
        out.id = ids[v];
        out.stopped = true;
        if (!ring.await_recovery(v)) break;  // run ended while still down
        ++restarts;  // recovered: re-run the algorithm from scratch
      }
      out.restarts = restarts;
      result.outcomes[v] = out;
      ring.worker_finished();
    });
  }

  std::thread chaos_thread;
  if (chaos) chaos_thread = std::thread([&ring, &chaos] { chaos(ring); });

  result.completed = ring.monitor(timeout_ms);
  if (chaos_thread.joinable()) chaos_thread.join();
  for (auto& w : workers) w.join();

  result.pulses = ring.total_sent();
  result.crashes = ring.crashes();
  result.recoveries = ring.recoveries();
  if (!result.completed) {
    result.stall_dump = ring.dump();  // publishes metrics as a side effect
  } else {
    ring.publish_metrics();
  }
  tally_leaders(result);
  if (metrics != nullptr) {
    publish_phase_pulses(*metrics, "rt.pulses", result.outcomes);
    // Theorem 1 margin as gauges: bound by algorithm family (Corollary 13
    // for Alg 1, Theorem 1 for Alg 2, Prop. 15 / Thm. 2 for Alg 3), with
    // injected pulses excluded — the bound speaks about node sends.
    const std::uint64_t id_max = *std::max_element(ids.begin(), ids.end());
    std::uint64_t bound = 0;
    switch (alg) {
      case ThreadAlg::alg1: bound = n * id_max; break;
      case ThreadAlg::alg2: bound = n * (2 * id_max + 1); break;
      case ThreadAlg::alg3_doubled: bound = n * (4 * id_max - 1); break;
      case ThreadAlg::alg3_improved: bound = n * (2 * id_max + 1); break;
    }
    metrics->gauge("rt.pulse_bound").set(static_cast<double>(bound));
    metrics->gauge("rt.pulse_margin")
        .set(static_cast<double>(bound) -
             static_cast<double>(result.pulses - ring.injected()));
  }
  return result;
}

}  // namespace colex::rt
