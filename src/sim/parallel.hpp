// Parallel sweep harness: a minimal work-stealing pool plus a parallel
// version of the exhaustive schedule explorer (sim/explore.hpp).
//
// Determinism contract
// --------------------
// Every parallel primitive here is *worker-count oblivious*: the result is
// a pure function of the inputs, identical for 1, 2, or N workers, because
//  * tasks write only to their own index's slot of caller-owned storage
//    (no shared accumulators, no locks on the hot path), and
//  * aggregation happens sequentially, in task-index order, after the pool
//    has joined.
// The pool itself is a single atomic cursor over the task range: idle
// workers "steal" the next unclaimed index, so uneven subtrees load-balance
// without any per-task queueing machinery. tests/test_parallel_explore.cpp
// asserts the 1-vs-N equivalence and runs under TSan in ci.sh.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "sim/explore.hpp"
#include "sim/network.hpp"
#include "util/contracts.hpp"

namespace colex::sim {

/// Default worker count for sweeps: hardware concurrency, at least 1.
inline std::size_t default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

/// Runs `count` independent tasks on up to `workers` threads; `fn(i)` is
/// invoked exactly once for every i in [0, count). With workers <= 1 the
/// tasks run inline on the calling thread — the zero-thread degenerate case
/// the determinism tests compare against. `fn` must confine its writes to
/// per-index state; it must not throw (a worker-thread exception would
/// terminate the process).
inline void parallel_for(std::size_t count, std::size_t workers,
                         const std::function<void(std::size_t)>& fn) {
  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  auto drain = [&cursor, count, &fn] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  const std::size_t spawned = std::min(workers, count) - 1;
  pool.reserve(spawned);
  for (std::size_t t = 0; t < spawned; ++t) pool.emplace_back(drain);
  drain();  // the calling thread works too
  for (auto& th : pool) th.join();
}

struct ParallelExploreOptions {
  /// Caps tree nodes visited, split deterministically across subtrees (the
  /// frontier split below), so truncation does not depend on worker count.
  std::uint64_t budget = 1'000'000;
  std::size_t workers = 1;
  /// The explorer first expands the tree breadth-first (sequentially) until
  /// at least this many independent frontier subtrees exist, then fans the
  /// subtrees out to the pool. More subtrees = better load balancing at the
  /// price of a longer sequential prefix.
  std::size_t min_subtrees = 64;
};

/// Parallel exhaustive exploration with deterministic aggregation. Each
/// frontier subtree explores into its own ExploreStats and its own `Acc`
/// (copied from the neutral value in `acc`); after the pool joins, the
/// per-subtree results are folded into `acc` in subtree order with
/// `merge(acc, subtree_acc)`, and the summed stats are returned. `on_leaf`
/// may freely mutate its Acc — it owns it exclusively — but must not touch
/// anything shared.
///
/// Exhaustive runs produce exactly the leaves of the sequential snapshot
/// engine (leaf *order* differs: breadth-first prefix, then depth-first per
/// subtree — but identically so for every worker count).
template <typename Acc>
ExploreStats parallel_explore_all_schedules(
    const std::function<PulseNetwork()>& build,
    const std::function<void(Acc&, PulseNetwork&)>& on_leaf,
    const std::function<void(Acc&, const Acc&)>& merge, Acc& acc,
    const ParallelExploreOptions& options) {
  COLEX_EXPECTS(options.budget > 0);
  ExploreStats stats;
  std::uint64_t budget = options.budget;

  struct Frontier {
    PulseNetwork net;
    std::uint64_t depth = 0;
  };
  std::deque<Frontier> queue;
  {
    Frontier root;
    root.net = build();
    root.net.start_all();
    queue.push_back(std::move(root));
  }

  // Sequential breadth-first expansion into independent subtree roots.
  // Each expansion is one tree-node visit (same budget unit as the DFS).
  const std::size_t want = options.min_subtrees == 0 ? 1 : options.min_subtrees;
  while (!queue.empty() && queue.size() < want && budget > 0) {
    Frontier f = std::move(queue.front());
    queue.pop_front();
    --budget;
    const auto pending = f.net.pending_channels();
    if (pending.empty()) {
      ++stats.leaves;
      stats.max_depth = std::max(stats.max_depth, f.depth);
      on_leaf(acc, f.net);
      continue;
    }
    for (std::size_t i = 0; i + 1 < pending.size(); ++i) {
      Frontier child;
      child.net = f.net.clone();
      child.net.deliver_step(pending[i]);
      child.depth = f.depth + 1;
      queue.push_back(std::move(child));
    }
    f.net.deliver_step(pending.back());
    ++f.depth;
    queue.push_back(std::move(f));
  }
  if (queue.empty()) return stats;  // whole tree fit into the expansion

  // Deterministic budget split: subtree i gets an equal share, the first
  // (budget mod subtrees) subtrees one unit more. Independent of workers.
  const std::size_t subtrees = queue.size();
  std::vector<Frontier> roots(std::make_move_iterator(queue.begin()),
                              std::make_move_iterator(queue.end()));
  std::vector<std::uint64_t> quota(subtrees, budget / subtrees);
  for (std::size_t i = 0; i < budget % subtrees; ++i) ++quota[i];

  std::vector<ExploreStats> sub_stats(subtrees);
  std::vector<Acc> sub_acc(subtrees, acc);
  parallel_for(subtrees, options.workers, [&](std::size_t i) {
    Acc& local = sub_acc[i];
    const std::function<void(PulseNetwork&)> leaf =
        [&local, &on_leaf](PulseNetwork& net) { on_leaf(local, net); };
    detail::snapshot_explore(roots[i].net, roots[i].depth, quota[i],
                             sub_stats[i], leaf);
  });

  for (std::size_t i = 0; i < subtrees; ++i) {
    stats.leaves += sub_stats[i].leaves;
    stats.truncated += sub_stats[i].truncated;
    stats.max_depth = std::max(stats.max_depth, sub_stats[i].max_depth);
    merge(acc, sub_acc[i]);
  }
  return stats;
}

}  // namespace colex::sim
