// The live telemetry plane: Prometheus text exposition over obs::Registry,
// a registry loader for recorded snapshots, and a tiny blocking HTTP/1.1
// server that publishes merged metrics while a run is in flight.
//
// Exposition contract
// -------------------
// * One encoder, two views. write_prometheus() renders a Registry; the
//   live endpoint calls it on a just-merged snapshot and colex-inspect's
//   `metrics` subcommand calls it on a registry reloaded from a recorded
//   colex-trace-v1 file (registry_from_json). Identical registries render
//   byte-identically, so the two views are directly diffable.
// * Naming: registry names pass through sanitize (non [a-zA-Z0-9_:] chars
//   become '_'), gain the `colex_` namespace prefix, and counters gain the
//   conventional `_total` suffix. A `{k=v,...}` tail composed by
//   obs::labeled() is split back into a proper label set with label-value
//   escaping (backslash, double-quote, newline). Example:
//   counter `pulses{phase=probe}` -> `colex_pulses_total{phase="probe"}`.
// * Families are grouped: all samples of one family are contiguous under a
//   single `# TYPE` line, in first-registration order. Histograms render
//   cumulative `_bucket{le="..."}` series plus `+Inf`, `_sum`, `_count`.
//
// Endpoint contract
// -----------------
// GET /metrics      -> 200 text/plain; version=0.0.4, the exposition
// GET /healthz      -> 200 "ok\n" (liveness only; no registry access)
// GET /debug/flight -> 200 flight-recorder tail, or 404 if not wired
// anything else     -> 404. Connection: close on every response.
//
// The server binds 127.0.0.1 only (this is an introspection port, not a
// public listener) and runs one blocking accept loop on a background
// thread — scrape traffic is one reader every few seconds, not a workload
// worth an event loop. `port = 0` picks an ephemeral port; port() returns
// the bound one after start().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace colex::obs {

/// Renders the Prometheus text exposition (version 0.0.4) of `reg`.
void write_prometheus(std::ostream& os, const Registry& reg);
std::string to_prometheus(const Registry& reg);

/// Parses a Registry::write_json() snapshot (as embedded in colex-trace-v1
/// `metrics` lines and BENCH_E*.json) back into a Registry. Throws
/// util::ContractViolation on malformed input.
Registry registry_from_json(const std::string& json);

/// Blocking HTTP/1.1 introspection server on 127.0.0.1.
class MetricsServer {
 public:
  /// Produces the registry snapshot served by /metrics. Called on the
  /// server thread per scrape; must be safe to call concurrently with the
  /// run (typically: merge per-shard snapshot copies taken under their
  /// own locks).
  using SnapshotFn = std::function<Registry()>;
  /// Produces the /debug/flight body (typically FlightRecorder::render_tail).
  using TextFn = std::function<std::string()>;

  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral; see port() after start()
    SnapshotFn metrics;      ///< required
    TextFn flight;           ///< optional; /debug/flight 404s without it
  };

  explicit MetricsServer(Options options) : options_(std::move(options)) {}
  ~MetricsServer() { stop(); }
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// Binds, listens, and spawns the serve thread. Returns false (with no
  /// thread spawned) if the socket setup fails — callers degrade to
  /// snapshot-file-only observability rather than aborting the run.
  bool start();

  /// The bound port (resolved after start(); 0 before).
  std::uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  /// Stops the accept loop and joins the thread. Idempotent.
  void stop();

 private:
  void serve_loop();
  std::string respond(const std::string& path) const;

  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Minimal blocking HTTP/1.1 GET against 127.0.0.1 (`host` must be
/// "localhost" or a dotted quad) — the in-repo scrape client used by
/// colex-top, the tests, and ci.sh, so none of them need curl. Returns
/// false on connect/transport errors; on success fills `status` from the
/// status line and `body` with everything past the header block.
bool http_get(const std::string& host, std::uint16_t port,
              const std::string& path, int& status, std::string& body);

}  // namespace colex::obs
