#include "coro/run.hpp"

#include "util/contracts.hpp"

namespace colex::coro {

CoroRunResult run_on_coro(const std::vector<std::uint64_t>& ids,
                          const std::vector<bool>& port_flips,
                          rt::ThreadAlg alg, const CoroRunOptions& options) {
  COLEX_EXPECTS(!ids.empty());
  const std::size_t n = ids.size();
  Executor ex(n, port_flips,
              ExecutorOptions{options.workers, options.timeout_ms,
                              options.metrics});

  // Spawn the same template transcriptions ThreadRing runs, over CoroIo.
  // The tasks own the coroutine frames; the executor only borrows handles.
  std::vector<rt::ElectionTask> tasks;
  tasks.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    tasks.push_back(
        rt::spawn_alg(alg, ex.io(v), ids[static_cast<std::size_t>(v)]));
    ex.bind(v, tasks.back().handle());
  }

  CoroRunResult result;
  result.completed = ex.run();
  result.pulses = ex.total_sent();
  result.stats = ex.stats();
  if (!result.completed) result.stall_dump = ex.stall_dump();

  result.outcomes.reserve(n);
  for (const auto& task : tasks) {
    result.outcomes.push_back(task.outcome());  // rethrows algorithm errors
  }
  for (sim::NodeId v = 0; v < n; ++v) {
    if (result.outcomes[v].role == co::Role::leader) {
      ++result.leader_count;
      if (!result.leader) result.leader = v;
    }
  }
  return result;
}

}  // namespace colex::coro
