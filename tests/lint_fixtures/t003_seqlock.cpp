// Fixture: T003 — seqlock writer protocol shape.
//
// A class with an atomic member named *version* plus other atomic members
// is a seqlock slot; every payload store must be bracketed by two version
// stores (odd: write in progress, even: stable).
#include <atomic>

namespace fixture_t003 {

// No version bracket at all: readers can observe the payload mid-write.
class T003Unbracketed {
 public:
  void write(unsigned long v) {
    t003_payload_a_.store(v);  // colex-lint: expect(T003)
  }

 private:
  std::atomic<unsigned long> t003_version_a_{0};
  std::atomic<unsigned long> t003_payload_a_{0};
};

// Both version stores present, but one payload store trails the closing
// version store — readers validating version-before == version-after can
// still see that field torn.
class T003Trailing {
 public:
  void write(unsigned long v) {  // colex-lint: expect(T003)
    const unsigned long s = t003_version_b_.load();
    t003_version_b_.store(s + 1);
    t003_word_b_.store(v);
    t003_version_b_.store(s + 2);
    t003_extra_b_.store(v);
  }

 private:
  std::atomic<unsigned long> t003_version_b_{0};
  std::atomic<unsigned long> t003_word_b_{0};
  std::atomic<unsigned long> t003_extra_b_{0};
};

class T003Waived {
 public:
  void write(unsigned long v) {
    t003_payload_c_.store(v);  // colex-lint: allow(T003) expect-suppressed(T003) fixture: single-word slot whose readers tolerate a torn read by design
  }

 private:
  std::atomic<unsigned long> t003_version_c_{0};
  std::atomic<unsigned long> t003_payload_c_{0};
};

}  // namespace fixture_t003
