file(REMOVE_RECURSE
  "libcolex_co.a"
)
