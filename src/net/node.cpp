#include "net/node.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <cstring>

namespace colex::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + ::strerror(errno);
}

/// Pulses batched past this count are flushed eagerly, ahead of the wait()
/// flush — bounds endpoint memory (trivially) and keeps long causal chains
/// (Algorithm 3's probe storms) moving while the sender is still busy.
constexpr std::uint64_t kFlushBatch = 64;

}  // namespace

// --- Handshake -----------------------------------------------------------

bool send_hello(int fd, std::uint32_t sender, std::uint32_t ring_size,
                const Deadline& deadline, std::string* err) {
  const std::vector<unsigned char> frame = encode_hello(sender, ring_size);
  return send_all(fd, frame.data(), frame.size(), deadline, err);
}

bool expect_hello(int fd, std::uint32_t want_sender, std::uint32_t ring_size,
                  const Deadline& deadline, std::string* err) {
  HelloParser parser;
  std::size_t got = 0;
  while (got < kHelloSize) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, deadline.remaining_ms());
    if (rc < 0 && errno != EINTR) {
      if (err != nullptr) *err = errno_string("poll(hello)");
      return false;
    }
    if (rc > 0) {
      // Read only the HELLO's remaining bytes: pulse bytes follow on the
      // same stream and must stay in the kernel buffer for the endpoint.
      unsigned char buf[kHelloSize];
      const ssize_t n = ::read(fd, buf, kHelloSize - got);
      if (n > 0) {
        parser.feed(buf, static_cast<std::size_t>(n));
        got += static_cast<std::size_t>(n);
        if (!parser.error().empty()) {
          if (err != nullptr) *err = parser.error();
          return false;
        }
      } else if (n == 0) {
        if (err != nullptr) {
          *err = "handshake: peer closed before HELLO completed";
        }
        return false;
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        if (err != nullptr) *err = errno_string("read(hello)");
        return false;
      }
    }
    if (got < kHelloSize && deadline.expired()) {
      if (err != nullptr) *err = "handshake: deadline waiting for HELLO";
      return false;
    }
  }
  const Hello h = parser.hello();
  if (h.sender != want_sender) {
    if (err != nullptr) {
      *err = "handshake: expected predecessor index " +
             std::to_string(want_sender) + ", got " + std::to_string(h.sender);
    }
    return false;
  }
  if (h.ring_size != ring_size) {
    if (err != nullptr) {
      *err = "handshake: ring size mismatch (ours " +
             std::to_string(ring_size) + ", peer says " +
             std::to_string(h.ring_size) + ")";
    }
    return false;
  }
  return true;
}

Fd accept_predecessor(int listener, std::uint32_t want_sender,
                      std::uint32_t ring_size, const Deadline& deadline,
                      std::string* err, obs::FlightRing* flight) {
  for (;;) {
    std::string attempt_err;
    Fd pred = accept_one(listener, deadline, &attempt_err);
    if (!pred.valid()) {
      if (err != nullptr) *err = "accept predecessor: " + attempt_err;
      return Fd{};
    }
    set_nodelay(pred.get());
    if (expect_hello(pred.get(), want_sender, ring_size, deadline,
                     &attempt_err)) {
      return pred;
    }
    if (deadline.expired()) {
      if (err != nullptr) *err = attempt_err;
      return Fd{};
    }
    // Stray connection on a recycled ephemeral port: drop it, accept again.
    if (flight != nullptr) flight->record("stray-dropped", want_sender);
  }
}

// --- PulseEndpoint -------------------------------------------------------

PulseEndpoint::PulseEndpoint(Fd succ, Fd pred, Fd ctl, sim::Port succ_port,
                             Deadline deadline, CtlParser parser,
                             std::vector<CtlMsg> pending,
                             obs::FlightRing* flight)
    : ctl_(std::move(ctl)),
      deadline_(deadline),
      ctl_parser_(std::move(parser)),
      flight_(flight) {
  links_[sim::index(succ_port)].fd = std::move(succ);
  links_[sim::index(sim::opposite(succ_port))].fd = std::move(pred);
  std::string err;
  for (Link& link : links_) {
    if (link.fd.valid()) {
      if (!set_nonblocking(link.fd.get(), &err)) fail(err);
      set_nodelay(link.fd.get());
    }
  }
  if (ctl_.valid()) {
    if (!set_nonblocking(ctl_.get(), &err)) fail(err);
  }
  // Control frames already decoded during formation (e.g. batched right
  // behind GO) must not be lost.
  for (const CtlMsg& msg : pending) {
    if (!handle_ctl(msg)) break;
  }
}

bool PulseEndpoint::recv(sim::Port p) {
  std::uint64_t& q = queue_[sim::index(p)];
  if (q == 0) return false;
  --q;
  ++counters_.consumed;
  return true;
}

void PulseEndpoint::send(sim::Port p) {
  ++counters_.sent;
  Link& link = links_[sim::index(p)];
  ++link.out_pending;
  if (link.out_pending >= kFlushBatch) flush_link(link);
}

bool PulseEndpoint::flush_link(Link& link) {
  if (link.out_pending == 0) return true;
  unsigned char buf[256];
  std::memset(buf, kPulseByte, sizeof(buf));
  while (link.out_pending > 0) {
    const std::size_t chunk = link.out_pending > sizeof(buf)
                                  ? sizeof(buf)
                                  : static_cast<std::size_t>(link.out_pending);
    std::string err;
    if (!send_all(link.fd.get(), buf, chunk, deadline_, &err)) {
      fail("pulse flush: " + err);
      return false;
    }
    link.out_pending -= chunk;
    counters_.bytes_tx += chunk;
  }
  ++counters_.flushes;
  return true;
}

bool PulseEndpoint::flush() {
  for (Link& link : links_) {
    if (!flush_link(link)) return false;
  }
  return true;
}

bool PulseEndpoint::drain_link(int port_idx, bool swallow) {
  Link& link = links_[port_idx];
  if (link.eof || !link.fd.valid()) return true;
  unsigned char buf[256];
  for (;;) {
    const ssize_t n = ::read(link.fd.get(), buf, sizeof(buf));
    if (n > 0) {
      counters_.bytes_rx += static_cast<std::uint64_t>(n);
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] != kPulseByte) {
          fail("data stream: unexpected byte " +
               std::to_string(static_cast<int>(buf[i])) + " on port " +
               std::to_string(port_idx));
          return false;
        }
      }
      if (swallow) {
        counters_.consumed += static_cast<std::uint64_t>(n);
      } else {
        queue_[port_idx] += static_cast<std::uint64_t>(n);
      }
      continue;
    }
    if (n == 0) {
      // Peer closed. During teardown this races the coordinator's STOP, so
      // it is not an error by itself: remember it, stop polling this edge,
      // and let STOP (or the watchdog) decide how the run ends.
      link.eof = true;
      if (flight_ != nullptr) {
        flight_->record("edge_eof", static_cast<std::uint64_t>(port_idx));
      }
      return true;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    fail(errno_string("read(pulse)"));
    return false;
  }
}

bool PulseEndpoint::handle_ctl(const CtlMsg& msg) {
  switch (msg.type) {
    case Ctl::stop:
      stop_ = true;
      if (flight_ != nullptr) flight_->record("stop");
      return true;
    case Ctl::probe:
      have_probe_ = true;
      probe_round_ = msg.words[0];
      return true;
    case Ctl::go:
      return true;  // duplicate GO is harmless
    default:
      fail("control stream: unexpected frame type " +
           std::to_string(static_cast<int>(msg.type)) + " mid-election");
      return false;
  }
}

bool PulseEndpoint::drain_ctl() {
  unsigned char buf[256];
  for (;;) {
    const ssize_t n = ::read(ctl_.get(), buf, sizeof(buf));
    if (n > 0) {
      std::vector<CtlMsg> msgs;
      if (!ctl_parser_.feed(buf, static_cast<std::size_t>(n), msgs)) {
        fail(ctl_parser_.error());
        return false;
      }
      for (const CtlMsg& msg : msgs) {
        if (!handle_ctl(msg)) return false;
      }
      continue;
    }
    if (n == 0) {
      fail("control connection closed by coordinator");
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    fail(errno_string("read(ctl)"));
    return false;
  }
}

bool PulseEndpoint::report() {
  ++counters_.reports;
  const std::vector<unsigned char> frame =
      encode_ctl(Ctl::report, {done_ ? kStateDone : kStateIdle,
                               counters_.sent, counters_.consumed});
  std::string err;
  if (!send_all(ctl_.get(), frame.data(), frame.size(), deadline_, &err)) {
    fail("report: " + err);
    return false;
  }
  if (flight_ != nullptr) {
    flight_->record("report", counters_.sent, counters_.consumed);
  }
  return true;
}

void PulseEndpoint::answer_pending_probe() {
  if (!have_probe_) return;
  // Only a provably idle node may ack: every sent pulse flushed to the
  // kernel, no arrived pulse left unconsumed. Anything else defers the ack
  // until the work drains — that deferral is what lets the coordinator's
  // two-round confirmation rule out in-flight pulses.
  if (queue_[0] + queue_[1] != 0) return;
  if (links_[0].out_pending + links_[1].out_pending != 0) return;
  have_probe_ = false;
  ++counters_.probe_acks;
  const std::vector<unsigned char> frame = encode_ctl(
      Ctl::probe_ack, {probe_round_, done_ ? kStateDone : kStateIdle,
                       counters_.sent, counters_.consumed});
  std::string err;
  if (!send_all(ctl_.get(), frame.data(), frame.size(), deadline_, &err)) {
    fail("probe ack: " + err);
    return;
  }
  if (flight_ != nullptr) {
    flight_->record("probe_ack", probe_round_, counters_.consumed);
  }
}

bool PulseEndpoint::wait() {
  ++counters_.waits;
  if (stop_) return false;
  if (!flush()) return false;
  if (!drain_ctl()) return false;
  if (stop_) return false;
  // Drain the kernel buffers before the pending-pulse check: the immediate
  // return below must still make progress when the algorithm is waiting on
  // one port while unconsumed pulses sit queued on the other.
  for (int i = 0; i < 2; ++i) {
    if (!drain_link(i, false)) return false;
  }
  if (queue_[0] + queue_[1] > 0) return true;  // ThreadRing wait_any contract
  if (!report()) return false;
  answer_pending_probe();
  if (stop_) return false;
  for (;;) {
    pollfd pfds[3];
    nfds_t nf = 0;
    for (int i = 0; i < 2; ++i) {
      if (!links_[i].eof && links_[i].fd.valid()) {
        pfds[nf].fd = links_[i].fd.get();
        pfds[nf].events = POLLIN;
        pfds[nf].revents = 0;
        ++nf;
      }
    }
    pfds[nf].fd = ctl_.get();
    pfds[nf].events = POLLIN;
    pfds[nf].revents = 0;
    ++nf;
    ++counters_.polls;
    const int rc = ::poll(pfds, nf, deadline_.remaining_ms());
    if (rc < 0 && errno != EINTR) {
      fail(errno_string("poll(wait)"));
      return false;
    }
    if (!drain_ctl()) return false;
    if (stop_) return false;
    for (int i = 0; i < 2; ++i) {
      if (!drain_link(i, false)) return false;
    }
    if (queue_[0] + queue_[1] > 0) return true;
    answer_pending_probe();
    if (deadline_.expired()) {
      std::string what = "wait(): watchdog deadline expired";
      if (links_[0].eof || links_[1].eof) {
        what += " after a ring edge saw EOF mid-election";
      }
      fail(what);
      return false;
    }
  }
}

void PulseEndpoint::drain_until_stop() {
  done_ = true;
  if (stop_) return;
  if (!flush()) return;
  // Anything still queued locally after termination is swallowed, exactly
  // as the simulator and the coroutine executor credit deliveries to
  // terminated nodes — conservation (sent == consumed) closes identically
  // on every substrate.
  counters_.consumed += queue_[0] + queue_[1];
  queue_[0] = queue_[1] = 0;
  if (!drain_ctl()) return;
  for (int i = 0; i < 2; ++i) {
    if (!drain_link(i, true)) return;
  }
  if (!report()) return;
  answer_pending_probe();
  while (!stop_) {
    pollfd pfds[3];
    nfds_t nf = 0;
    for (int i = 0; i < 2; ++i) {
      if (!links_[i].eof && links_[i].fd.valid()) {
        pfds[nf].fd = links_[i].fd.get();
        pfds[nf].events = POLLIN;
        pfds[nf].revents = 0;
        ++nf;
      }
    }
    pfds[nf].fd = ctl_.get();
    pfds[nf].events = POLLIN;
    pfds[nf].revents = 0;
    ++nf;
    ++counters_.polls;
    const int rc = ::poll(pfds, nf, deadline_.remaining_ms());
    if (rc < 0 && errno != EINTR) {
      fail(errno_string("poll(drain)"));
      return;
    }
    if (!drain_ctl()) return;
    if (stop_) return;
    const std::uint64_t before = counters_.consumed;
    for (int i = 0; i < 2; ++i) {
      if (!drain_link(i, true)) return;
    }
    if (counters_.consumed != before) {
      if (!report()) return;  // counters moved: refresh the coordinator
    }
    answer_pending_probe();
    if (deadline_.expired()) {
      fail("drain_until_stop(): watchdog deadline expired");
      return;
    }
  }
}

void PulseEndpoint::shutdown() {
  if (shut_) return;
  shut_ = true;
  if (error_.empty()) flush();  // best effort on the happy path
  for (Link& link : links_) link.fd.reset();
  ctl_.reset();
  if (flight_ != nullptr) {
    flight_->record("shutdown", counters_.sent, counters_.consumed);
  }
}

void PulseEndpoint::fail(const std::string& what) {
  if (error_.empty()) error_ = what;  // first failure is the root cause
  stop_ = true;
  if (flight_ != nullptr) flight_->record("error");
}

// --- run_ring_node -------------------------------------------------------

namespace {

/// Reads control frames until one of type `want` arrives; any other frame
/// (or EOF, or the deadline) is a formation failure. Frames decoded beyond
/// `want` stay in `pending` for the endpoint to inherit.
bool await_ctl(int fd, CtlParser& parser, std::vector<CtlMsg>& pending,
               Ctl want, CtlMsg* out, const Deadline& deadline,
               std::string* err) {
  for (;;) {
    if (!pending.empty()) {
      CtlMsg msg = std::move(pending.front());
      pending.erase(pending.begin());
      if (msg.type == want) {
        *out = std::move(msg);
        return true;
      }
      if (msg.type == Ctl::err) {
        *err = "formation: coordinator error: " + msg.text;
      } else {
        *err = "formation: unexpected control frame type " +
               std::to_string(static_cast<int>(msg.type));
      }
      return false;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, deadline.remaining_ms());
    if (rc < 0 && errno != EINTR) {
      *err = errno_string("poll(ctl)");
      return false;
    }
    if (rc > 0) {
      unsigned char buf[256];
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        if (!parser.feed(buf, static_cast<std::size_t>(n), pending)) {
          *err = parser.error();
          return false;
        }
      } else if (n == 0) {
        *err = "formation: coordinator closed control connection";
        return false;
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        *err = errno_string("read(ctl)");
        return false;
      }
    }
    if (pending.empty() && deadline.expired()) {
      *err = "formation: deadline waiting for control frame";
      return false;
    }
  }
}

}  // namespace

NodeResult run_ring_node(const RingNodeConfig& cfg) {
  NodeResult res;
  const Deadline deadline = Deadline::in_ms(cfg.timeout_ms);
  std::string err;

  // Failures are reported both locally and — when the control connection is
  // up — to the coordinator, so a multi-process run aborts with the cause
  // instead of timing out in silence.
  const auto fail = [&](const std::string& what, int ctl_fd = -1) {
    res.ok = false;
    res.error = "node " + std::to_string(cfg.index) + ": " + what;
    if (ctl_fd >= 0) {
      const std::vector<unsigned char> frame = encode_err(res.error);
      std::string ignored;
      send_all(ctl_fd, frame.data(), frame.size(), deadline, &ignored);
    }
    return res;
  };

  if (cfg.ring_size == 0 || cfg.index >= cfg.ring_size || cfg.id == 0) {
    return fail("invalid config (index/ring_size/id)");
  }
  if (cfg.flight != nullptr) cfg.flight->record("start", cfg.index, cfg.id);

  // Data-plane listener first: the JOIN frame carries its bound port.
  std::uint16_t data_port = 0;
  Fd listener = listen_on(cfg.data_port, &data_port, &err);
  if (!listener.valid()) return fail("listen: " + err);

  Fd ctl = connect_retry(cfg.coordinator_port, deadline, &err);
  if (!ctl.valid()) return fail("connect coordinator: " + err);
  set_nodelay(ctl.get());
  {
    const std::vector<unsigned char> frame =
        encode_ctl(Ctl::join, {cfg.index, data_port});
    if (!send_all(ctl.get(), frame.data(), frame.size(), deadline, &err)) {
      return fail("join: " + err);
    }
  }

  CtlParser parser;
  std::vector<CtlMsg> pending;
  CtlMsg msg;
  if (!await_ctl(ctl.get(), parser, pending, Ctl::peers, &msg, deadline,
                 &err)) {
    return fail(err, ctl.get());
  }
  if (msg.words[0] != cfg.ring_size) {
    return fail("peers: coordinator ring size " +
                    std::to_string(msg.words[0]) + " != configured " +
                    std::to_string(cfg.ring_size),
                ctl.get());
  }
  const std::uint16_t succ_port = static_cast<std::uint16_t>(msg.words[1]);
  if (cfg.flight != nullptr) cfg.flight->record("peers", succ_port);

  // Ring formation: connect out to the successor, accept the predecessor,
  // verify both HELLOs. For n == 1 the connect loops back to our own
  // listener; the formulas below degenerate correctly (predecessor == us).
  Fd succ = connect_retry(succ_port, deadline, &err);
  if (!succ.valid()) return fail("connect successor: " + err, ctl.get());
  set_nodelay(succ.get());
  if (!send_hello(succ.get(), cfg.index, cfg.ring_size, deadline, &err)) {
    return fail("hello to successor: " + err, ctl.get());
  }
  const std::uint32_t want_pred =
      (cfg.index + cfg.ring_size - 1) % cfg.ring_size;
  Fd pred = accept_predecessor(listener.get(), want_pred, cfg.ring_size,
                               deadline, &err, cfg.flight);
  if (!pred.valid()) return fail(err, ctl.get());
  listener.reset();  // the ring is formed; no further connections expected

  {
    const std::vector<unsigned char> frame = encode_ctl(Ctl::ready, {});
    if (!send_all(ctl.get(), frame.data(), frame.size(), deadline, &err)) {
      return fail("ready: " + err);
    }
  }
  if (!await_ctl(ctl.get(), parser, pending, Ctl::go, &msg, deadline, &err)) {
    return fail(err, ctl.get());
  }
  if (cfg.flight != nullptr) cfg.flight->record("go");

  // The successor edge carries the node's Port1 label in the oriented base,
  // Port0 under a flip — identical to sim::wire_ring / coro::wire_ring.
  const sim::Port succ_label = cfg.flip ? sim::Port::p0 : sim::Port::p1;
  PulseEndpoint ep(std::move(succ), std::move(pred), std::move(ctl),
                   succ_label, deadline, std::move(parser),
                   std::move(pending), cfg.flight);

  rt::BlockingOutcome out;
  try {
    out = rt::drive_blocking(
        rt::spawn_alg(cfg.alg, rt::TransportPort<EndpointIo>(EndpointIo(ep)),
                      cfg.id));
  } catch (const std::exception& e) {
    return fail(std::string("algorithm: ") + e.what(), ep.ctl_fd());
  }
  if (out.terminated) ep.drain_until_stop();

  res.outcome = out;
  res.counters = ep.counters();
  if (!ep.error().empty()) return fail(ep.error(), ep.ctl_fd());

  const std::vector<unsigned char> frame =
      encode_result(out, ep.sent(), ep.consumed());
  if (!send_all(ep.ctl_fd(), frame.data(), frame.size(), deadline, &err)) {
    return fail("result: " + err);
  }
  ep.shutdown();
  res.ok = true;
  return res;
}

}  // namespace colex::net
