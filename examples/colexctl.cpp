// colexctl — command-line driver for the library: run any algorithm on any
// ring under any adversary, inspect solitude patterns, compare against the
// classical baselines.
//
//   colexctl elect      [--alg alg1|alg2|alg3] [--scheme doubled|improved]
//                       [--n N | --ids 3,9,2] [--scramble SEED]
//                       [--scheduler NAME] [--seed S]
//   colexctl anonymous  [--n N] [--c C] [--seed S] [--scheduler NAME]
//   colexctl compose    [--n N] [--seed S]            (Corollary 5 demo)
//   colexctl solitude   [--id I]                      (Definition 21)
//   colexctl baselines  [--n N] [--seed S]
//   colexctl explore    [--ids 1,2] [--budget B]       (every schedule)
//   colexctl schedulers                                (list adversaries)
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "baselines/baselines.hpp"
#include "co/election.hpp"
#include "colib/apps.hpp"
#include "colib/composed.hpp"
#include "lb/solitude.hpp"
#include "sim/explore.hpp"
#include "sim/scheduler.hpp"
#include "util/ids.hpp"
#include "util/table.hpp"

namespace {

using namespace colex;

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args[key] = argv[++i];
    } else {
      args[key] = "1";
    }
  }
  return args;
}

std::string get(const Args& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

std::uint64_t get_u64(const Args& args, const std::string& key,
                      std::uint64_t fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback
                          : std::strtoull(it->second.c_str(), nullptr, 10);
}

std::vector<std::uint64_t> parse_ids(const std::string& csv) {
  std::vector<std::uint64_t> ids;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    ids.push_back(std::strtoull(item.c_str(), nullptr, 10));
  }
  return ids;
}

std::unique_ptr<sim::Scheduler> make_scheduler(const std::string& name,
                                               std::uint64_t seed) {
  for (auto& s : sim::standard_schedulers(1, seed)) {
    // Allow both exact names and seed-less prefixes like "random".
    if (s.name == name || s.name.rfind(name + "-", 0) == 0) {
      return std::move(s.scheduler);
    }
  }
  return nullptr;
}

std::vector<std::uint64_t> resolve_ids(const Args& args) {
  if (args.count("ids") != 0) return parse_ids(get(args, "ids", ""));
  const auto n = static_cast<std::size_t>(get_u64(args, "n", 8));
  return util::shuffled(util::dense_ids(n), get_u64(args, "seed", 1) + 7);
}

int cmd_elect(const Args& args) {
  const auto ids = resolve_ids(args);
  if (ids.empty()) {
    std::cerr << "no ids\n";
    return 1;
  }
  const auto scheduler_name = get(args, "scheduler", "random");
  auto scheduler = make_scheduler(scheduler_name, get_u64(args, "seed", 1));
  if (scheduler == nullptr) {
    std::cerr << "unknown scheduler '" << scheduler_name
              << "' (see: colexctl schedulers)\n";
    return 1;
  }
  const auto alg = get(args, "alg", "alg2");

  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);

  if (alg == "alg1") {
    const auto result = co::elect_oriented_stabilizing(ids, *scheduler);
    std::cout << "alg1 (stabilizing): leader="
              << (result.leader ? std::to_string(*result.leader) : "-")
              << " pulses=" << result.pulses << " (n*IDmax="
              << ids.size() * id_max << ") quiescent="
              << (result.quiescent ? "yes" : "no") << "\n";
    return result.valid_election() ? 0 : 1;
  }
  if (alg == "alg2") {
    const auto result = co::elect_oriented_terminating(ids, *scheduler);
    std::cout << "alg2 (terminating): leader="
              << (result.leader ? std::to_string(*result.leader) : "-")
              << " pulses=" << result.pulses << " (n(2*IDmax+1)="
              << co::theorem1_pulses(ids.size(), id_max)
              << ") terminated="
              << (result.all_terminated ? "yes" : "no") << "\n";
    return result.valid_election() ? 0 : 1;
  }
  if (alg == "alg3") {
    co::Alg3NonOriented::Options options;
    options.scheme = get(args, "scheme", "improved") == "doubled"
                         ? co::IdScheme::doubled
                         : co::IdScheme::improved;
    const auto flips = util::random_flips(
        ids.size(), get_u64(args, "scramble", 0));
    const auto result =
        co::elect_and_orient(ids, flips, options, *scheduler);
    std::cout << "alg3 (" << to_string(options.scheme)
              << "): leader="
              << (result.leader ? std::to_string(*result.leader) : "-")
              << " pulses=" << result.pulses << " oriented="
              << (result.orientation_consistent ? "yes" : "no") << "\n";
    return result.valid_election() && result.orientation_consistent ? 0 : 1;
  }
  std::cerr << "unknown --alg '" << alg << "'\n";
  return 1;
}

int cmd_anonymous(const Args& args) {
  const auto n = static_cast<std::size_t>(get_u64(args, "n", 8));
  const double c = std::strtod(get(args, "c", "2.0").c_str(), nullptr);
  const auto seed = get_u64(args, "seed", 1);
  auto scheduler =
      make_scheduler(get(args, "scheduler", "random"), seed);
  if (scheduler == nullptr || n == 0 || c <= 0) {
    std::cerr << "bad arguments\n";
    return 1;
  }
  const auto flips = util::random_flips(n, seed * 3);
  const auto result =
      co::anonymous_election(n, flips, c, seed, *scheduler);
  std::uint64_t mx = 0;
  for (const auto& s : result.sampled) mx = std::max(mx, s.id);
  std::cout << "anonymous: n=" << n << " c=" << c << " IDmax=" << mx
            << " unique-max=" << (result.sampled_unique_max ? "yes" : "no")
            << " elected="
            << (result.election.valid_election() ? "yes" : "no")
            << " pulses=" << result.election.pulses << "\n";
  return 0;
}

int cmd_compose(const Args& args) {
  const auto ids = resolve_ids(args);
  auto scheduler =
      make_scheduler(get(args, "scheduler", "random"),
                     get_u64(args, "seed", 1));
  if (scheduler == nullptr) return 1;
  sim::PulseNetwork net;
  const auto result = colib::run_composed_with_network(
      ids,
      [](sim::NodeId v) {
        return std::make_unique<colib::GatherAllApp>(v + 1);
      },
      *scheduler, {}, net);
  std::cout << "compose: leader="
            << (result.leader ? std::to_string(*result.leader) : "-")
            << " n-learned=" << result.ring_size_learned
            << " election-pulses=" << result.election_pulses
            << " bus-pulses=" << result.bus_pulses << " terminated="
            << (result.all_terminated ? "yes" : "no") << "\n";
  return result.all_terminated ? 0 : 1;
}

int cmd_solitude(const Args& args) {
  const auto id = get_u64(args, "id", 5);
  const auto pattern = lb::solitude_pattern(
      [](std::uint64_t i) -> std::unique_ptr<sim::PulseAutomaton> {
        return std::make_unique<co::Alg2Terminating>(i);
      },
      id);
  std::cout << "solitude pattern of ID " << id << " (0=CW, 1=CCW): "
            << pattern.bits << "\n";
  std::cout << "length=" << pattern.bits.size() << " (2*ID+1="
            << 2 * id + 1 << "), terminated="
            << (pattern.terminated ? "yes" : "no") << "\n";
  return 0;
}

int cmd_baselines(const Args& args) {
  const auto ids = resolve_ids(args);
  util::Table table({"algorithm", "messages", "bits", "leader-id", "ok"});
  auto row = [&table](const char* name, const baselines::BaselineResult& r) {
    table.add_row({name, util::Table::num(r.messages),
                   util::Table::num(r.bits), util::Table::num(r.leader_id),
                   r.ok ? "yes" : "NO"});
  };
  sim::GlobalFifoScheduler s0, s1, s2, s3, s4;
  row("lelann", baselines::lelann(ids, s0));
  row("chang-roberts", baselines::chang_roberts(ids, s1));
  row("hirschberg-sinclair", baselines::hirschberg_sinclair(ids, s2));
  row("peterson", baselines::peterson(ids, s3));
  row("franklin", baselines::franklin(ids, s4));
  sim::GlobalFifoScheduler s5;
  const auto ir =
      baselines::itai_rodeh(ids.size(), get_u64(args, "seed", 1), s5);
  row("itai-rodeh (anon)", ir);
  sim::GlobalFifoScheduler s6;
  const auto co_result = co::elect_oriented_terminating(ids, s6);
  table.add_row({"content-oblivious alg2",
                 util::Table::num(co_result.pulses), "0 (pulses only)",
                 util::Table::num(
                     co_result.leader ? ids[*co_result.leader] : 0),
                 co_result.valid_election() ? "yes" : "NO"});
  table.print(std::cout);
  return 0;
}

int cmd_explore(const Args& args) {
  const auto ids = args.count("ids") != 0
                       ? parse_ids(get(args, "ids", ""))
                       : std::vector<std::uint64_t>{1, 2};
  if (ids.empty() || ids.size() > 3) {
    std::cerr << "explore: give 1-3 ids (the schedule tree is exponential)\n";
    return 1;
  }
  std::uint64_t id_max = 0;
  for (const auto id : ids) id_max = std::max(id_max, id);
  std::uint64_t bad_leaves = 0;
  const auto stats = sim::explore_all_schedules(
      [&ids] {
        auto net = sim::PulseNetwork::ring(ids.size());
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          net.set_automaton(v,
                            std::make_unique<co::Alg2Terminating>(ids[v]));
        }
        return net;
      },
      [&](sim::PulseNetwork& net) {
        std::size_t leaders = 0;
        for (sim::NodeId v = 0; v < ids.size(); ++v) {
          const auto& alg = net.automaton_as<co::Alg2Terminating>(v);
          if (!alg.terminated()) ++bad_leaves;
          if (alg.role() == co::Role::leader) ++leaders;
        }
        if (leaders != 1 ||
            net.total_sent() !=
                co::theorem1_pulses(ids.size(), id_max)) {
          ++bad_leaves;
        }
      },
      get_u64(args, "budget", 2'000'000));
  std::cout << "explore: " << stats.leaves << " distinct schedules"
            << (stats.exhaustive() ? " (exhaustive)" : " (TRUNCATED)")
            << ", max depth " << stats.max_depth << ", violations "
            << bad_leaves << "\n";
  return stats.exhaustive() && bad_leaves == 0 ? 0 : 1;
}

int cmd_schedulers() {
  std::cout << "standard adversary suite:\n";
  for (const auto& s : sim::standard_schedulers(1)) {
    std::cout << "  " << s.name << "\n";
  }
  return 0;
}

void usage() {
  std::cout <<
      "usage: colexctl <command> [options]\n"
      "  elect      --alg alg1|alg2|alg3 [--scheme doubled|improved]\n"
      "             [--n N | --ids 3,9,2] [--scramble SEED]\n"
      "             [--scheduler NAME] [--seed S]\n"
      "  anonymous  --n N --c C [--seed S]\n"
      "  compose    [--n N | --ids ...] [--seed S]\n"
      "  solitude   --id I\n"
      "  baselines  [--n N | --ids ...]\n"
      "  explore    --ids 1,2 [--budget B]   (exhaustive schedules)\n"
      "  schedulers\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (command == "elect") return cmd_elect(args);
    if (command == "anonymous") return cmd_anonymous(args);
    if (command == "compose") return cmd_compose(args);
    if (command == "solitude") return cmd_solitude(args);
    if (command == "baselines") return cmd_baselines(args);
    if (command == "explore") return cmd_explore(args);
    if (command == "schedulers") return cmd_schedulers();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  usage();
  return 1;
}
