#include "sim/scheduler.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace colex::sim {

std::size_t GlobalFifoScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  const auto it = std::min_element(
      pending.begin(), pending.end(),
      [](const ChannelView& a, const ChannelView& b) {
        return a.head_seq < b.head_seq;
      });
  return it->channel;
}

std::size_t GlobalLifoScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  const auto it = std::max_element(
      pending.begin(), pending.end(),
      [](const ChannelView& a, const ChannelView& b) {
        return a.head_seq < b.head_seq;
      });
  return it->channel;
}

std::size_t RandomScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  return pending[rng_.below(pending.size())].channel;
}

std::string RandomScheduler::name() const {
  return "random-" + std::to_string(seed_);
}

std::size_t RoundRobinScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  // Smallest channel id strictly greater than last_, wrapping around.
  const ChannelView* best = nullptr;
  const ChannelView* smallest = nullptr;
  for (const auto& v : pending) {
    if (smallest == nullptr || v.channel < smallest->channel) smallest = &v;
    if (v.channel > last_ && (best == nullptr || v.channel < best->channel)) {
      best = &v;
    }
  }
  const ChannelView* chosen = best != nullptr ? best : smallest;
  last_ = chosen->channel;
  return chosen->channel;
}

std::size_t DrainChannelScheduler::pick(
    const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  for (const auto& v : pending) {
    if (v.channel == current_) return current_;
  }
  const auto it = std::max_element(
      pending.begin(), pending.end(),
      [](const ChannelView& a, const ChannelView& b) {
        if (a.pending != b.pending) return a.pending < b.pending;
        return a.channel > b.channel;  // deterministic tie-break
      });
  current_ = it->channel;
  return current_;
}

std::size_t StarveDirectionScheduler::pick(
    const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  const ChannelView* preferred = nullptr;  // oldest pulse not in starved dir
  const ChannelView* fallback = nullptr;   // oldest pulse overall
  for (const auto& v : pending) {
    if (fallback == nullptr || v.head_seq < fallback->head_seq) fallback = &v;
    if (v.dir != starved_ &&
        (preferred == nullptr || v.head_seq < preferred->head_seq)) {
      preferred = &v;
    }
  }
  return (preferred != nullptr ? preferred : fallback)->channel;
}

std::string StarveDirectionScheduler::name() const {
  return std::string("starve-") + to_string(starved_);
}

std::size_t EclipseScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  const ChannelView* preferred = nullptr;
  for (const auto& v : pending) {
    if (v.channel == eclipsed_) continue;
    if (preferred == nullptr || v.head_seq < preferred->head_seq) {
      preferred = &v;
    }
  }
  return preferred != nullptr ? preferred->channel : eclipsed_;
}

std::string EclipseScheduler::name() const {
  return "eclipse-" + std::to_string(eclipsed_);
}

std::size_t BurstyScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  if (remaining_ > 0) {
    for (const auto& v : pending) {
      if (v.channel == current_) {
        --remaining_;
        return current_;
      }
    }
  }
  const auto& chosen = pending[rng_.below(pending.size())];
  current_ = chosen.channel;
  remaining_ = rng_.below(8);
  return current_;
}

std::string BurstyScheduler::name() const {
  return "bursty-" + std::to_string(seed_);
}

std::size_t WalkScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  // Locate the extremal heads once; bonuses attach to those channels.
  const ChannelView* newest = &pending.front();
  const ChannelView* oldest = &pending.front();
  for (const auto& v : pending) {
    if (v.head_seq > newest->head_seq) newest = &v;
    if (v.head_seq < oldest->head_seq) oldest = &v;
  }
  std::uint64_t total = 0;
  auto weight_of = [&](const ChannelView& v) {
    std::uint64_t w = profile_.base;
    if (&v == newest) w += profile_.lifo;
    if (&v == oldest) w += profile_.fifo;
    if (v.channel == last_) w += profile_.stick;
    w += v.dir == Direction::cw ? profile_.cw : profile_.ccw;
    return w > 0 ? w : 1;  // never starve a channel outright
  };
  for (const auto& v : pending) total += weight_of(v);
  std::uint64_t r = rng_.below(total);
  for (const auto& v : pending) {
    const std::uint64_t w = weight_of(v);
    if (r < w) {
      last_ = v.channel;
      return v.channel;
    }
    r -= w;
  }
  last_ = pending.back().channel;  // unreachable: weights sum to total
  return last_;
}

std::string WalkScheduler::name() const {
  return "walk-" + std::to_string(seed_);
}

std::size_t MixScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  COLEX_EXPECTS(!parts_.empty());
  if (remaining_ == 0) {
    active_ = rng_.below(parts_.size());
    remaining_ = 1 + rng_.below(24);
  }
  --remaining_;
  return parts_[active_]->pick(pending);
}

std::string MixScheduler::name() const {
  return "mix-" + std::to_string(seed_) + "/" +
         std::to_string(parts_.size());
}

void MixScheduler::reset() {
  rng_ = util::Xoshiro256StarStar(seed_);
  active_ = 0;
  remaining_ = 0;
  for (auto& p : parts_) p->reset();
}

std::size_t SolitudeScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  // Order sent; ties (same event step) broken by CW priority (Definition 21).
  const auto it = std::min_element(
      pending.begin(), pending.end(),
      [](const ChannelView& a, const ChannelView& b) {
        if (a.head_stamp != b.head_stamp) return a.head_stamp < b.head_stamp;
        const bool a_ccw = a.dir == Direction::ccw;
        const bool b_ccw = b.dir == Direction::ccw;
        if (a_ccw != b_ccw) return !a_ccw;
        return a.head_seq < b.head_seq;
      });
  return it->channel;
}

std::size_t ReplayScheduler::pick(const std::vector<ChannelView>& pending) {
  COLEX_EXPECTS(!pending.empty());
  if (cursor_ < tape_.size()) {
    const std::size_t wanted = tape_[cursor_];
    for (const auto& v : pending) {
      if (v.channel == wanted) {
        ++cursor_;
        return wanted;
      }
    }
    ++divergences_;
    ++cursor_;
  } else {
    ++divergences_;
  }
  // Fallback: oldest pulse first.
  const ChannelView* oldest = &pending.front();
  for (const auto& v : pending) {
    if (v.head_seq < oldest->head_seq) oldest = &v;
  }
  return oldest->channel;
}

std::vector<NamedScheduler> standard_schedulers(std::size_t random_instances,
                                                std::uint64_t seed_base) {
  std::vector<NamedScheduler> out;
  auto add = [&out](std::unique_ptr<Scheduler> s) {
    std::string n = s->name();
    out.push_back(NamedScheduler{std::move(n), std::move(s)});
  };
  add(std::make_unique<GlobalFifoScheduler>());
  add(std::make_unique<GlobalLifoScheduler>());
  add(std::make_unique<RoundRobinScheduler>());
  add(std::make_unique<DrainChannelScheduler>());
  add(std::make_unique<StarveDirectionScheduler>(Direction::cw));
  add(std::make_unique<StarveDirectionScheduler>(Direction::ccw));
  add(std::make_unique<SolitudeScheduler>());
  add(std::make_unique<EclipseScheduler>(0));
  add(std::make_unique<BurstyScheduler>(seed_base));
  for (std::size_t i = 0; i < random_instances; ++i) {
    add(std::make_unique<RandomScheduler>(seed_base + i));
  }
  return out;
}

}  // namespace colex::sim
