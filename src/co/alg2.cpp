#include "co/alg2.hpp"

#include "util/contracts.hpp"

namespace colex::co {

Alg2Terminating::Alg2Terminating(std::uint64_t id) : id_(id) {
  COLEX_EXPECTS(id >= 1);
}

void Alg2Terminating::start(sim::PulseContext& ctx) {
  send_cw(ctx, counters_);  // line 1
}

bool Alg2Terminating::iterate(sim::PulseContext& ctx) {
  // While blocked in the wait loop of lines 16-17, the node reacts to
  // nothing but the returning termination pulse.
  if (awaiting_return_) {
    if (!recv_ccw(ctx, counters_)) return false;
    awaiting_return_ = false;
    // Fall through to the until-check in line 18 below.
    if (counters_.rho_ccw > counters_.rho_cw) done_ = true;
    return true;
  }

  bool progress = false;

  // Lines 3-8: run Algorithm 1 over the CW channel.
  if (recv_cw(ctx, counters_)) {
    if (counters_.rho_cw == id_) {
      role_ = Role::leader;
    } else {
      role_ = Role::non_leader;
      send_cw(ctx, counters_);
    }
    progress = true;
  }

  // Lines 9-13: run Algorithm 1 over the CCW channel once rho_cw >= ID.
  if (counters_.rho_cw >= id_) {
    if (counters_.sigma_ccw == 0) {
      send_ccw(ctx, counters_);  // line 10
      progress = true;
    }
    if (recv_ccw(ctx, counters_)) {
      if (counters_.rho_ccw != id_) send_ccw(ctx, counters_);
      progress = true;
    }
  }

  // Lines 14-17: the unique leader event initiates the termination pulse.
  if (counters_.rho_cw == id_ && counters_.rho_ccw == id_ &&
      !initiated_termination_) {
    initiated_termination_ = true;
    awaiting_return_ = true;   // lines 16-17; set before the send so the
                               // termination pulse itself is attributed to
                               // the initiated_wait phase
    send_ccw(ctx, counters_);  // line 15
    return true;
  }

  // Line 18: until rho_ccw > rho_cw.
  if (counters_.rho_ccw > counters_.rho_cw) {
    done_ = true;
    return true;
  }
  return progress;
}

void Alg2Terminating::react(sim::PulseContext& ctx) {
  while (!done_ && iterate(ctx)) {
  }
}

}  // namespace colex::co
