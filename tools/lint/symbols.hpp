// Project-wide function symbol table for colex-lint.
//
// The scope walker (classes.cpp) already finds every function *definition*
// per file; this layer joins them across the tree into a flat symbol list
// with a by-name index, so the interprocedural passes (taint.cpp,
// concurrency.cpp) can resolve `name(` call sites to candidate definitions.
// Resolution is by unqualified name — deliberately an over-approximation
// (every definition sharing the name is a candidate), which is the safe
// direction for both passes: taint may only spread wider, reachability may
// only grow.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/classes.hpp"
#include "lint/source.hpp"

namespace colex::lint {

struct FunctionSymbol {
  std::size_t file = 0;  // index into the scanned file list
  std::size_t fn = 0;    // index into FileIndex::functions of that file
  std::string name;      // unqualified; "" for lambdas
  std::string owner;     // enclosing class or `X` of an out-of-line `X::f`
  int line = 0;
  int param_count = 0;  // -1 when the parameter list could not be parsed
};

struct SymbolTable {
  std::vector<FunctionSymbol> symbols;
  /// name -> indices into `symbols` (empty names are not indexed).
  std::map<std::string, std::vector<std::size_t>> by_name;
  /// by_file_fn[file][fn] -> index into `symbols`, mirroring
  /// ProjectIndex::files[file].functions[fn].
  std::vector<std::vector<std::size_t>> by_file_fn;
};

/// Counts the parameters of `fn`'s declared parameter list: top-level commas
/// plus one, with `()` and `(void)` both 0. Template-argument commas are
/// skipped via a light angle-bracket heuristic. Returns -1 when no parameter
/// list is found (unnamed bodies).
int count_params(const std::vector<Token>& toks, const FunctionDef& fn);

/// Index of the token matching the opener at `open` ('(' -> ')'), or
/// (size_t)-1 when unbalanced. Shared by the token-level passes.
std::size_t match_forward_tok(const std::vector<Token>& toks,
                              std::size_t open, char open_ch, char close_ch);

SymbolTable build_symbol_table(const std::vector<SourceFile>& files,
                               const ProjectIndex& project);

}  // namespace colex::lint
