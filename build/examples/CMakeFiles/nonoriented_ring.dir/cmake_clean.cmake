file(REMOVE_RECURSE
  "CMakeFiles/nonoriented_ring.dir/nonoriented_ring.cpp.o"
  "CMakeFiles/nonoriented_ring.dir/nonoriented_ring.cpp.o.d"
  "nonoriented_ring"
  "nonoriented_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonoriented_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
