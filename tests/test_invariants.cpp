// Heavy-duty property suite: the paper's invariants (co/invariants.hpp)
// asserted after EVERY simulator event, across random ring sizes, ID
// assignments, port scrambles, schedulers, and start interleavings. This is
// the fuzzing backbone of the repository: hundreds of full executions, each
// checked at every step.
#include <gtest/gtest.h>

#include <memory>

#include "co/election.hpp"
#include "co/invariants.hpp"
#include "helpers.hpp"
#include "sim/network.hpp"

namespace colex::co {
namespace {

struct FuzzConfig {
  std::size_t n;
  std::vector<std::uint64_t> ids;
  std::vector<bool> flips;
  std::uint64_t seed;
};

FuzzConfig make_config(std::uint64_t seed, bool allow_duplicates) {
  util::Xoshiro256StarStar rng(seed * 2654435761u + 1);
  FuzzConfig cfg;
  cfg.seed = seed;
  cfg.n = 1 + rng.below(10);
  if (allow_duplicates && rng.bernoulli(0.4)) {
    cfg.ids.resize(cfg.n);
    for (auto& id : cfg.ids) id = rng.in_range(1, 6);
    // Lemma 16 covers arbitrary multisets; ensure at least one node exists.
  } else {
    cfg.ids = test::sparse_ids(cfg.n, 8 * cfg.n + 8, seed + 17);
  }
  cfg.flips = test::random_flips(cfg.n, seed + 29);
  return cfg;
}

std::unique_ptr<sim::Scheduler> pick_scheduler(std::uint64_t seed) {
  auto suite = sim::standard_schedulers(3, seed);
  return std::move(suite[seed % suite.size()].scheduler);
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, Alg1InvariantsAtEveryEvent) {
  const auto cfg = make_config(GetParam(), /*allow_duplicates=*/true);
  std::uint64_t id_max = 0;
  for (const auto id : cfg.ids) id_max = std::max(id_max, id);

  auto net = sim::PulseNetwork::ring(cfg.n);
  for (sim::NodeId v = 0; v < cfg.n; ++v) {
    net.set_automaton(v, std::make_unique<Alg1Stabilizing>(cfg.ids[v]));
  }
  sim::RunOptions opts;
  opts.interleave_starts = (cfg.seed % 3) == 0;
  opts.interleave_seed = cfg.seed;
  std::uint64_t checks = 0;
  opts.on_event = [&](sim::PulseNetwork& n) {
    for (sim::NodeId v = 0; v < cfg.n; ++v) {
      if (!n.started(v)) continue;
      const auto err =
          check_alg1_invariants(n.automaton_as<Alg1Stabilizing>(v), id_max);
      ASSERT_TRUE(err.empty()) << "node " << v << ": " << err;
      ++checks;
    }
  };
  auto sched = pick_scheduler(cfg.seed);
  const auto report = net.run(*sched, opts);
  ASSERT_TRUE(report.quiescent);
  EXPECT_EQ(report.sent, cfg.n * id_max);  // Corollary 13
  EXPECT_GT(checks, 0u);
}

TEST_P(FuzzSweep, Alg2InvariantsAtEveryEvent) {
  const auto cfg = make_config(GetParam(), /*allow_duplicates=*/false);
  std::uint64_t id_max = 0;
  for (const auto id : cfg.ids) id_max = std::max(id_max, id);

  auto net = sim::PulseNetwork::ring(cfg.n);
  for (sim::NodeId v = 0; v < cfg.n; ++v) {
    net.set_automaton(v, std::make_unique<Alg2Terminating>(cfg.ids[v]));
  }
  sim::RunOptions opts;
  opts.interleave_starts = (cfg.seed % 2) == 0;
  opts.interleave_seed = cfg.seed * 3 + 1;
  opts.on_event = [&](sim::PulseNetwork& n) {
    for (sim::NodeId v = 0; v < cfg.n; ++v) {
      if (!n.started(v)) continue;
      const auto err =
          check_alg2_invariants(n.automaton_as<Alg2Terminating>(v), id_max);
      ASSERT_TRUE(err.empty()) << "node " << v << ": " << err;
    }
  };
  auto sched = pick_scheduler(cfg.seed + 1000);
  const auto report = net.run(*sched, opts);
  ASSERT_TRUE(report.quiescent);
  ASSERT_TRUE(report.all_terminated);
  EXPECT_EQ(report.sent, theorem1_pulses(cfg.n, id_max));
  EXPECT_EQ(report.deliveries_to_terminated, 0u);
}

TEST_P(FuzzSweep, Alg3InvariantsAtEveryEvent) {
  const auto cfg = make_config(GetParam(), /*allow_duplicates=*/false);
  const IdScheme scheme =
      cfg.seed % 2 == 0 ? IdScheme::improved : IdScheme::doubled;
  std::uint64_t id_max = 0;
  for (const auto id : cfg.ids) id_max = std::max(id_max, id);

  auto net = sim::PulseNetwork::ring(cfg.n, cfg.flips);
  for (sim::NodeId v = 0; v < cfg.n; ++v) {
    Alg3NonOriented::Options options;
    options.scheme = scheme;
    net.set_automaton(v,
                      std::make_unique<Alg3NonOriented>(cfg.ids[v], options));
  }
  sim::RunOptions opts;
  opts.on_event = [&](sim::PulseNetwork& n) {
    for (sim::NodeId v = 0; v < cfg.n; ++v) {
      if (!n.started(v)) continue;
      const auto err =
          check_alg3_invariants(n.automaton_as<Alg3NonOriented>(v), scheme);
      ASSERT_TRUE(err.empty()) << "node " << v << ": " << err;
    }
  };
  auto sched = pick_scheduler(cfg.seed + 2000);
  const auto report = net.run(*sched, opts);
  ASSERT_TRUE(report.quiescent);
  const std::uint64_t expected = scheme == IdScheme::doubled
                                     ? prop15_pulses(cfg.n, id_max)
                                     : theorem1_pulses(cfg.n, id_max);
  EXPECT_EQ(report.sent, expected);
}

TEST_P(FuzzSweep, ConservationLawHolds) {
  // Network ground truth at every event: sent >= delivered >= consumed,
  // and the algorithm-side counters agree with the network's totals.
  const auto cfg = make_config(GetParam(), /*allow_duplicates=*/false);
  auto net = sim::PulseNetwork::ring(cfg.n);
  for (sim::NodeId v = 0; v < cfg.n; ++v) {
    net.set_automaton(v, std::make_unique<Alg2Terminating>(cfg.ids[v]));
  }
  sim::RunOptions opts;
  opts.on_event = [&](sim::PulseNetwork& n) {
    ASSERT_GE(n.total_sent(), n.total_sent() - n.in_flight());
    std::uint64_t algo_sent = 0, algo_received = 0;
    for (sim::NodeId v = 0; v < cfg.n; ++v) {
      const auto& k = n.automaton_as<Alg2Terminating>(v).counters();
      algo_sent += k.sigma_cw + k.sigma_ccw;
      algo_received += k.rho_cw + k.rho_ccw;
    }
    ASSERT_EQ(algo_sent, n.total_sent());
    ASSERT_EQ(algo_sent - algo_received, n.in_transit());
  };
  auto sched = pick_scheduler(cfg.seed + 3000);
  const auto report = net.run(*sched, opts);
  ASSERT_TRUE(report.quiescent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(InvariantCheckers, DetectFabricatedViolations) {
  // The checkers themselves must reject corrupt states (guards the guards).
  EXPECT_FALSE(check_lemma6(5, 2, 2, true, "x").empty());   // sigma too low
  EXPECT_FALSE(check_lemma6(5, 7, 8, true, "x").empty());   // sigma too high
  EXPECT_TRUE(check_lemma6(5, 2, 3, true, "x").empty());
  EXPECT_TRUE(check_lemma6(5, 7, 7, true, "x").empty());
  EXPECT_FALSE(check_lemma6(5, 0, 3, false, "x").empty());  // unstarted sent
}

TEST(InvariantCheckers, FlagInjectedPulseInAlg1Run) {
  // End-to-end: a model violation (injected pulse) must eventually trip an
  // invariant checker.
  const std::vector<std::uint64_t> ids{3, 5, 2};
  auto net = sim::PulseNetwork::ring(ids.size());
  for (sim::NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<Alg1Stabilizing>(ids[v]));
  }
  bool injected = false, violation_seen = false;
  int events = 0;
  sim::RunOptions opts;
  opts.max_events = 4000;
  opts.on_event = [&](sim::PulseNetwork& n) {
    if (++events == 4 && !injected) {
      n.inject_fault(0);
      injected = true;
    }
    for (sim::NodeId v = 0; v < ids.size(); ++v) {
      if (!n.started(v)) continue;
      if (!check_alg1_invariants(n.automaton_as<Alg1Stabilizing>(v), 5)
               .empty()) {
        violation_seen = true;
      }
    }
  };
  sim::GlobalFifoScheduler sched;
  net.run(sched, opts);
  EXPECT_TRUE(injected);
  EXPECT_TRUE(violation_seen);
}

}  // namespace
}  // namespace colex::co
