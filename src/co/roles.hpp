// Output vocabulary of the leader election task (paper §3).
#pragma once

namespace colex::co {

/// A node's election output. `undecided` is the initial value before the
/// algorithm first assigns a state; every correct execution ends with exactly
/// one `leader` and n-1 `non_leader`.
enum class Role { undecided, leader, non_leader };

constexpr const char* to_string(Role r) {
  switch (r) {
    case Role::undecided: return "undecided";
    case Role::leader: return "leader";
    case Role::non_leader: return "non-leader";
  }
  return "?";
}

}  // namespace colex::co
