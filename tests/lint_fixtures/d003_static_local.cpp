// Fixture: D003 — mutable function-local statics.

int next_ticket() {
  static int counter = 0;  // colex-lint: expect(D003)
  return ++counter;
}

int table_lookup(int i) {
  static const int table[3] = {11, 22, 33};  // immutable: not flagged
  return table[i % 3];
}

int memoized_size() {
  static int cache = -1;  // colex-lint: allow(D003) expect-suppressed(D003) fixture: set-once cache, justified hidden state
  if (cache < 0) cache = 64;
  return cache;
}
