#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace colex::obs {
namespace {

TEST(Counter, AccumulatesAndMerges) {
  Counter a, b;
  a.inc();
  a.inc(4);
  b.inc(10);
  EXPECT_EQ(a.value(), 5u);
  a.merge(b);
  EXPECT_EQ(a.value(), 15u);
}

TEST(Gauge, SetOverwritesTrackMaxDoesNot) {
  Gauge g;
  g.set(3.0);
  g.set(1.0);
  EXPECT_EQ(g.value(), 1.0);
  g.track_max(0.5);
  EXPECT_EQ(g.value(), 1.0);
  g.track_max(7.0);
  EXPECT_EQ(g.value(), 7.0);
}

TEST(Gauge, MergeKeepsMaximum) {
  Gauge a, b;
  a.set(2.0);
  b.set(5.0);
  a.merge(b);
  EXPECT_EQ(a.value(), 5.0);
  Gauge c;
  c.set(1.0);
  a.merge(c);
  EXPECT_EQ(a.value(), 5.0);
}

TEST(Histogram, BucketsByInclusiveUpperEdgeWithOverflow) {
  Histogram h({1.0, 10.0});
  h.record(0.5);   // bucket 0
  h.record(1.0);   // bucket 0 (inclusive edge)
  h.record(5.0);   // bucket 1
  h.record(100.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  EXPECT_EQ(h.max(), 100.0);
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
}

TEST(Histogram, RestoreOverwritesWholesale) {
  Histogram h({1.0, 10.0});
  h.record(0.5);
  h.restore(7, 21.5, 9.0, {3, 3, 1});
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 21.5);
  EXPECT_EQ(h.max(), 9.0);
  EXPECT_EQ(h.buckets(), (std::vector<std::uint64_t>{3, 3, 1}));
  // Layout is part of the registration contract: a mismatched bucket count
  // is a corrupt snapshot, not a resize request.
  EXPECT_THROW(h.restore(1, 1.0, 1.0, {1, 1}), util::ContractViolation);
}

TEST(Histogram, RejectsNonAscendingBounds) {
  EXPECT_THROW(Histogram({2.0, 1.0}), util::ContractViolation);
  EXPECT_THROW(Histogram({1.0, 1.0}), util::ContractViolation);
}

TEST(Histogram, MergeIsBucketWise) {
  Histogram a({1.0, 2.0}), b({1.0, 2.0});
  a.record(0.5);
  b.record(1.5);
  b.record(9.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[2], 1u);
}

TEST(Histogram, MergeRejectsMismatchedLayout) {
  Histogram a({1.0}), b({2.0});
  EXPECT_THROW(a.merge(b), util::ContractViolation);
}

TEST(Registry, HandlesAreStableAcrossRegistrations) {
  Registry reg;
  Counter& first = reg.counter("x");
  first.inc();
  // Registering more metrics must not invalidate the earlier handle.
  for (int i = 0; i < 100; ++i) {
    std::string name = "c";
    name += std::to_string(i);
    reg.counter(name);
  }
  first.inc();
  EXPECT_EQ(reg.counter("x").value(), 2u);
}

TEST(Registry, HistogramReResolveIgnoresNewBounds) {
  Registry reg;
  reg.histogram("h", {1.0, 2.0}).record(1.5);
  Histogram& again = reg.histogram("h", {99.0});
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(again.count(), 1u);
}

TEST(Registry, MergeSumsCountersMaxesGaugesAdoptsUnknown) {
  Registry a, b;
  a.counter("shared").inc(2);
  a.gauge("g").set(1.0);
  b.counter("shared").inc(3);
  b.counter("only-b").inc(7);
  b.gauge("g").set(4.0);
  b.histogram("h", {1.0}).record(0.5);
  a.merge(b);
  EXPECT_EQ(a.counter("shared").value(), 5u);
  EXPECT_EQ(a.counter("only-b").value(), 7u);
  EXPECT_EQ(a.gauge("g").value(), 4.0);
  EXPECT_EQ(a.histogram("h", {}).count(), 1u);
}

TEST(Registry, DeepCopyIsIndependent) {
  Registry a;
  a.counter("c").inc(1);
  Registry b = a;
  a.counter("c").inc(10);
  EXPECT_EQ(b.counter("c").value(), 1u);
  b = a;
  EXPECT_EQ(b.counter("c").value(), 11u);
}

TEST(Registry, JsonSnapshotIsInsertionOrdered) {
  Registry reg;
  reg.counter("z").inc(1);
  reg.counter("a").inc(2);
  reg.gauge("g").set(1.5);
  reg.histogram("h", {1.0}).record(0.5);
  const std::string json = reg.to_json();
  EXPECT_EQ(json,
            "{\"counters\":{\"z\":1,\"a\":2},"
            "\"gauges\":{\"g\":1.5},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":0.5,\"max\":0.5,"
            "\"bounds\":[1],\"buckets\":[1,0]}}}");
}

TEST(Registry, EmptyRegistrySnapshot) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(Registry, LabeledComposesSeriesNames) {
  EXPECT_EQ(labeled("pulses", "phase", "probe"), "pulses{phase=probe}");
  Registry reg;
  reg.counter(labeled("pulses", "phase", "probe")).inc(3);
  reg.counter(labeled("pulses", "phase", "elected")).inc(4);
  // Distinct label values are distinct series.
  EXPECT_EQ(reg.counter("pulses{phase=probe}").value(), 3u);
  EXPECT_EQ(reg.counter("pulses{phase=elected}").value(), 4u);
}

TEST(Registry, JsonEscapesMetricNames) {
  Registry reg;
  reg.counter("a\"b\\c\nd").inc(1);
  EXPECT_EQ(reg.to_json(),
            "{\"counters\":{\"a\\\"b\\\\c\\nd\":1},"
            "\"gauges\":{},\"histograms\":{}}");
}

}  // namespace
}  // namespace colex::obs
