# Empty dependencies file for colex_co.
# This may be replaced when dependencies are built.
