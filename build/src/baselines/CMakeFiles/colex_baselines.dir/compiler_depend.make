# Empty compiler generated dependencies file for colex_baselines.
# This may be replaced when dependencies are built.
