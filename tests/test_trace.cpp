// Tests for the execution tracing and conservation-audit facility.
#include <gtest/gtest.h>

#include <memory>

#include "co/alg2.hpp"
#include "co/alg3.hpp"
#include "co/election.hpp"
#include "helpers.hpp"
#include "sim/network.hpp"
#include "sim/trace.hpp"

namespace colex::sim {
namespace {

TEST(Trace, RecordsEverySendAndDelivery) {
  const std::vector<std::uint64_t> ids{2, 4, 1};
  auto net = PulseNetwork::ring(ids.size());
  for (NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
  }
  TraceRecorder trace;
  RunOptions opts;
  trace.attach(net, opts);
  GlobalFifoScheduler sched;
  const auto report = net.run(sched, opts);
  ASSERT_TRUE(report.quiescent);
  EXPECT_EQ(trace.sends(), report.sent);
  EXPECT_EQ(trace.deliveries(), report.deliveries);
  EXPECT_EQ(trace.events().size(), report.sent + report.deliveries);
  // Indices are the stream positions.
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    EXPECT_EQ(trace.events()[i].index, i);
  }
}

TEST(Trace, AuditPassesOnCleanRunsAllSchedulers) {
  const std::vector<std::uint64_t> ids{6, 11, 3, 9, 1};
  for (auto& named : standard_schedulers(3)) {
    auto net = PulseNetwork::ring(ids.size());
    for (NodeId v = 0; v < ids.size(); ++v) {
      net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
    }
    TraceRecorder trace;
    RunOptions opts;
    trace.attach(net, opts);
    const auto report = net.run(*named.scheduler, opts);
    ASSERT_TRUE(report.quiescent) << named.name;
    EXPECT_EQ(trace.audit(ring_wiring(ids.size())), "") << named.name;
  }
}

TEST(Trace, AuditPassesOnScrambledRings) {
  const std::vector<std::uint64_t> ids{5, 9, 2, 7};
  const std::vector<bool> flips{true, false, true, true};
  auto net = PulseNetwork::ring(ids.size(), flips);
  for (NodeId v = 0; v < ids.size(); ++v) {
    co::Alg3NonOriented::Options options;
    net.set_automaton(v,
                      std::make_unique<co::Alg3NonOriented>(ids[v], options));
  }
  TraceRecorder trace;
  RunOptions opts;
  trace.attach(net, opts);
  RandomScheduler sched(5);
  const auto report = net.run(sched, opts);
  ASSERT_TRUE(report.quiescent);
  EXPECT_EQ(trace.audit(ring_wiring(ids.size(), flips)), "");
}

TEST(Trace, AuditDetectsInjectedPulse) {
  // An injected pulse was never sent by any node; the conservation audit
  // must flag the channel that over-delivers.
  const std::vector<std::uint64_t> ids{3, 5, 2};
  auto net = PulseNetwork::ring(ids.size());
  for (NodeId v = 0; v < ids.size(); ++v) {
    net.set_automaton(v, std::make_unique<co::Alg2Terminating>(ids[v]));
  }
  TraceRecorder trace;
  RunOptions opts;
  trace.attach(net, opts);
  opts.max_events = 2000;
  bool injected = false;
  auto previous = opts.on_event;
  opts.on_event = [&](PulseNetwork& n) {
    if (!injected && n.total_sent() >= 3) {
      n.inject_fault(0);
      injected = true;
    }
  };
  GlobalFifoScheduler sched;
  net.run(sched, opts);
  ASSERT_TRUE(injected);
  EXPECT_NE(trace.audit(ring_wiring(ids.size())), "");
}

TEST(Trace, ChainsPreviousDeliverHook) {
  auto net = PulseNetwork::ring(2);
  net.set_automaton(0, std::make_unique<co::Alg2Terminating>(1));
  net.set_automaton(1, std::make_unique<co::Alg2Terminating>(2));
  int external_hook_calls = 0;
  RunOptions opts;
  opts.on_deliver = [&external_hook_calls](NodeId, Port, Direction) {
    ++external_hook_calls;
  };
  TraceRecorder trace;
  trace.attach(net, opts);
  GlobalFifoScheduler sched;
  const auto report = net.run(sched, opts);
  EXPECT_EQ(static_cast<std::uint64_t>(external_hook_calls),
            report.deliveries);
  EXPECT_EQ(trace.deliveries(), report.deliveries);
}

TEST(Trace, EventToString) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::deliver;
  e.node = 3;
  e.port = Port::p1;
  e.dir = Direction::ccw;
  e.index = 17;
  const auto text = to_string(e);
  EXPECT_NE(text.find("deliver"), std::string::npos);
  EXPECT_NE(text.find("node=3"), std::string::npos);
  EXPECT_NE(text.find("ccw"), std::string::npos);
  EXPECT_NE(text.find("#17"), std::string::npos);
}

TEST(Trace, RingWiringMapsEndpointsBothWays) {
  // Oriented 3-ring: a delivery at node 1's Port0 came from node 0's Port1.
  const auto wiring = ring_wiring(3);
  EXPECT_EQ(wiring(1, Port::p0), (std::pair<NodeId, Port>{0, Port::p1}));
  EXPECT_EQ(wiring(0, Port::p1), (std::pair<NodeId, Port>{1, Port::p0}));
  // Self-loop: node 0's two ports face each other.
  const auto loop = ring_wiring(1);
  EXPECT_EQ(loop(0, Port::p0), (std::pair<NodeId, Port>{0, Port::p1}));
  EXPECT_EQ(loop(0, Port::p1), (std::pair<NodeId, Port>{0, Port::p0}));
  // Flipped node 1 in a 3-ring: its labels swap.
  const auto scrambled = ring_wiring(3, {false, true, false});
  EXPECT_EQ(scrambled(1, Port::p1), (std::pair<NodeId, Port>{0, Port::p1}));
  EXPECT_EQ(scrambled(1, Port::p0), (std::pair<NodeId, Port>{2, Port::p0}));
}

}  // namespace
}  // namespace colex::sim
