file(REMOVE_RECURSE
  "CMakeFiles/anonymous_ring.dir/anonymous_ring.cpp.o"
  "CMakeFiles/anonymous_ring.dir/anonymous_ring.cpp.o.d"
  "anonymous_ring"
  "anonymous_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
