// Extended baseline coverage: exhaustive small-ring permutations, average-
// vs worst-case statistics, Itai-Rodeh behaviour, and cross-checks against
// the content-oblivious election.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/baselines.hpp"
#include "co/election.hpp"
#include "helpers.hpp"

namespace colex::baselines {
namespace {

TEST(BaselinesExtended, ExhaustivePermutationsFourNodes) {
  std::vector<std::uint64_t> ids{1, 2, 3, 4};
  std::sort(ids.begin(), ids.end());
  do {
    sim::GlobalFifoScheduler s0, s1, s2, s3, s4;
    const auto le = lelann(ids, s0);
    const auto cr = chang_roberts(ids, s1);
    const auto hs = hirschberg_sinclair(ids, s2);
    const auto pe = peterson(ids, s3);
    const auto fr = franklin(ids, s4);
    ASSERT_TRUE(le.ok && cr.ok && hs.ok && pe.ok && fr.ok);
    // Max-electing algorithms must agree on ID 4.
    ASSERT_EQ(le.leader_id, 4u);
    ASSERT_EQ(cr.leader_id, 4u);
    ASSERT_EQ(hs.leader_id, 4u);
    ASSERT_EQ(fr.leader_id, 4u);
  } while (std::next_permutation(ids.begin(), ids.end()));
}

TEST(BaselinesExtended, AgreeWithContentObliviousLeader) {
  // The content-oblivious election and the classical max-electing
  // algorithms must name the same node.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto ids = test::sparse_ids(5 + seed % 4, 300, seed);
    sim::RandomScheduler s0(seed), s1(seed + 50);
    const auto co_result = co::elect_oriented_terminating(ids, s0);
    const auto cr = chang_roberts(ids, s1);
    ASSERT_TRUE(co_result.valid_election() && cr.ok);
    EXPECT_EQ(*co_result.leader, *cr.leader) << seed;
    EXPECT_EQ(ids[*co_result.leader], cr.leader_id) << seed;
  }
}

TEST(BaselinesExtended, ChangRobertsAverageCaseIsNLogN) {
  // Random placements: expected candidate messages are ~n*H_n; assert the
  // empirical mean over many shuffles sits well below the n(n+1)/2 worst
  // case and within a small factor of n*H_n.
  const std::size_t n = 64;
  double total = 0;
  constexpr int kRuns = 40;
  for (int r = 0; r < kRuns; ++r) {
    const auto ids = test::shuffled(test::dense_ids(n),
                                    static_cast<std::uint64_t>(r) + 1);
    sim::GlobalFifoScheduler sched;
    const auto result = chang_roberts(ids, sched);
    ASSERT_TRUE(result.ok);
    total += static_cast<double>(result.messages) - static_cast<double>(n);
  }
  const double mean_candidates = total / kRuns;
  double harmonic = 0;
  for (std::size_t i = 1; i <= n; ++i) harmonic += 1.0 / static_cast<double>(i);
  const double expected = static_cast<double>(n) * harmonic;
  EXPECT_LT(mean_candidates, 2.0 * expected);
  EXPECT_GT(mean_candidates, 0.5 * expected);
  EXPECT_LT(mean_candidates, static_cast<double>(n) * (n + 1) / 4);
}

TEST(BaselinesExtended, HirschbergSinclairPhaseStructure) {
  // With 2^k-hop doubling, messages stay within the textbook 8n(log n + 1)
  // even in the all-adversarial-schedule sweep.
  const auto ids = test::shuffled(test::dense_ids(32), 9);
  for (auto& named : sim::standard_schedulers(2)) {
    const auto result = hirschberg_sinclair(ids, *named.scheduler);
    ASSERT_TRUE(result.ok) << named.name;
    EXPECT_LT(static_cast<double>(result.messages),
              8.0 * 32 * (std::log2(32.0) + 1) + 8 * 32)
        << named.name;
  }
}

TEST(BaselinesExtended, PetersonHalvesActivesPerPhase) {
  // Message count <= 2 n ceil(log2 n) + 3n (candidates) + n (announce).
  for (const std::size_t n : {4u, 16u, 64u, 128u}) {
    const auto ids = test::shuffled(test::dense_ids(n), n + 1);
    sim::GlobalFifoScheduler sched;
    const auto result = peterson(ids, sched);
    ASSERT_TRUE(result.ok);
    const double bound =
        2.0 * static_cast<double>(n) * std::ceil(std::log2(n)) +
        4.0 * static_cast<double>(n);
    EXPECT_LT(static_cast<double>(result.messages), bound) << n;
  }
}

TEST(BaselinesExtended, FranklinMatchesPetersonOrderOfMagnitude) {
  const auto ids = test::shuffled(test::dense_ids(64), 4);
  sim::GlobalFifoScheduler s0, s1;
  const auto pe = peterson(ids, s0);
  const auto fr = franklin(ids, s1);
  ASSERT_TRUE(pe.ok && fr.ok);
  EXPECT_LT(fr.messages, 3 * pe.messages);
  EXPECT_LT(pe.messages, 3 * fr.messages);
}

TEST(BaselinesExtended, ItaiRodehTwoNodes) {
  // n = 2 maximizes collision probability; the algorithm must still always
  // elect exactly one leader (Las Vegas), possibly over several phases.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    sim::RandomScheduler sched(seed);
    const auto result = itai_rodeh(2, seed, sched);
    ASSERT_TRUE(result.ok) << seed;
  }
}

TEST(BaselinesExtended, ItaiRodehSchedulerSweep) {
  for (auto& named : sim::standard_schedulers(3)) {
    const auto result = itai_rodeh(7, 99, *named.scheduler);
    ASSERT_TRUE(result.ok) << named.name;
  }
}

TEST(BaselinesExtended, LateDeliveriesOnlyWhereExpected) {
  // LeLann, Chang-Roberts, and Peterson terminate cleanly on a ring;
  // Hirschberg-Sinclair may legitimately strand defeated probes behind the
  // announcement (content-carrying algorithms can discard them — paper
  // §1.1's contrast).
  const auto ids = test::shuffled(test::dense_ids(16), 21);
  sim::GlobalFifoScheduler s0, s1, s2;
  EXPECT_EQ(lelann(ids, s0).late_deliveries, 0u);
  EXPECT_EQ(chang_roberts(ids, s1).late_deliveries, 0u);
  EXPECT_EQ(peterson(ids, s2).late_deliveries, 0u);
}

TEST(BaselinesExtended, BitCostsScaleWithIdWidth) {
  // Same ring shape, IDs shifted up by a factor 2^20: message counts are
  // identical, bit counts grow.
  std::vector<std::uint64_t> small = test::shuffled(test::dense_ids(12), 3);
  std::vector<std::uint64_t> big = small;
  for (auto& id : big) id += (1ull << 20);
  sim::GlobalFifoScheduler s0, s1;
  const auto r_small = chang_roberts(small, s0);
  const auto r_big = chang_roberts(big, s1);
  ASSERT_TRUE(r_small.ok && r_big.ok);
  EXPECT_EQ(r_small.messages, r_big.messages);
  EXPECT_GT(r_big.bits, r_small.bits);
}

TEST(BaselinesExtended, SingleNodeEveryAlgorithm) {
  sim::GlobalFifoScheduler s0, s1, s2, s3, s4, s5;
  EXPECT_TRUE(lelann({9}, s0).ok);
  EXPECT_TRUE(chang_roberts({9}, s1).ok);
  EXPECT_TRUE(hirschberg_sinclair({9}, s2).ok);
  EXPECT_TRUE(peterson({9}, s3).ok);
  EXPECT_TRUE(franklin({9}, s4).ok);
  EXPECT_TRUE(itai_rodeh(1, 5, s5).ok);
}

}  // namespace
}  // namespace colex::baselines
