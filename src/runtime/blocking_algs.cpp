#include "runtime/blocking_algs.hpp"

#include <algorithm>
#include <thread>

#include "util/contracts.hpp"

namespace colex::rt {
namespace {

// Oriented-ring wrappers matching the paper's four methods (§3): sendCW
// transmits on Port1; CW pulses arrive at Port0.
struct OrientedIo {
  NodeIo& io;
  co::PulseCounters& k;

  void send_cw() {
    io.send(co::kCwPort);
    ++k.sigma_cw;
  }
  bool recv_cw() {
    if (!io.recv(co::kCcwPort)) return false;
    ++k.rho_cw;
    return true;
  }
  void send_ccw() {
    io.send(co::kCcwPort);
    ++k.sigma_ccw;
  }
  bool recv_ccw() {
    if (!io.recv(co::kCwPort)) return false;
    ++k.rho_ccw;
    return true;
  }
};

}  // namespace

BlockingOutcome run_alg1_blocking(NodeIo io, std::uint64_t id) {
  COLEX_EXPECTS(id >= 1);
  BlockingOutcome out;
  out.id = id;
  OrientedIo ring{io, out.counters};

  ring.send_cw();  // line 1
  for (;;) {       // line 2
    if (ring.recv_cw()) {  // line 3
      if (out.counters.rho_cw == id) {  // line 4
        out.role = co::Role::leader;
      } else {
        out.role = co::Role::non_leader;
        ring.send_cw();
      }
    } else if (!io.wait_any()) {
      out.stopped = true;  // harness: network is quiescent
      return out;
    }
  }
}

BlockingOutcome run_alg2_blocking(NodeIo io, std::uint64_t id) {
  COLEX_EXPECTS(id >= 1);
  BlockingOutcome out;
  out.id = id;
  OrientedIo ring{io, out.counters};
  auto& k = out.counters;
  bool initiated = false;

  ring.send_cw();  // line 1
  do {             // line 2
    bool progress = false;
    if (ring.recv_cw()) {  // lines 3-8
      if (k.rho_cw == id) {
        out.role = co::Role::leader;
      } else {
        out.role = co::Role::non_leader;
        ring.send_cw();
      }
      progress = true;
    }
    if (k.rho_cw >= id) {  // lines 9-13
      if (k.sigma_ccw == 0) {
        ring.send_ccw();
        progress = true;
      }
      if (ring.recv_ccw()) {
        if (k.rho_ccw != id) ring.send_ccw();
        progress = true;
      }
    }
    if (k.rho_cw == id && k.rho_ccw == id && !initiated) {  // lines 14-17
      initiated = true;
      ring.send_ccw();
      while (!ring.recv_ccw()) {
        if (!io.wait_any()) {
          out.stopped = true;  // should never happen for Algorithm 2
          return out;
        }
      }
      progress = true;
    }
    if (!progress && !(k.rho_ccw > k.rho_cw)) {
      if (!io.wait_any()) {
        out.stopped = true;
        return out;
      }
    }
  } while (!(k.rho_ccw > k.rho_cw));  // line 18
  out.terminated = true;              // line 19: output state
  return out;
}

BlockingOutcome run_alg3_blocking(NodeIo io, std::uint64_t id,
                                  co::IdScheme scheme) {
  COLEX_EXPECTS(id >= 1);
  BlockingOutcome out;
  out.id = id;
  const co::VirtualIds vids = co::virtual_ids(id, scheme);

  auto send_port = [&](int i) {
    io.send(sim::port_from_index(i));
    ++out.sigma_port[i];
  };
  auto recv_port = [&](int i) {
    if (!io.recv(sim::port_from_index(i))) return false;
    ++out.rho_port[i];
    return true;
  };

  for (const int i : {0, 1}) send_port(i);  // lines 1-3
  for (;;) {                                // line 4
    bool progress = false;
    for (const int i : {0, 1}) {  // lines 5-7
      if (recv_port(1 - i)) {
        if (out.rho_port[1 - i] != vids.vid[i]) send_port(i);
        progress = true;
      }
    }
    // Lines 8-16.
    if (std::max(out.rho_port[0], out.rho_port[1]) >= vids.vid[1]) {
      if (out.rho_port[0] == vids.vid[1] && out.rho_port[1] < vids.vid[1]) {
        out.role = co::Role::leader;
      } else {
        out.role = co::Role::non_leader;
      }
      out.cw_port =
          out.rho_port[0] > out.rho_port[1] ? sim::Port::p1 : sim::Port::p0;
    }
    if (!progress && !io.wait_any()) {
      out.stopped = true;
      return out;
    }
  }
}

ThreadRunResult run_on_threads(const std::vector<std::uint64_t>& ids,
                               const std::vector<bool>& port_flips,
                               ThreadAlg alg, std::uint64_t timeout_ms,
                               ChaosScript chaos, obs::Registry* metrics) {
  COLEX_EXPECTS(!ids.empty());
  const std::size_t n = ids.size();
  ThreadRing ring(n, port_flips);
  ring.set_metrics(metrics);  // before any worker starts

  ThreadRunResult result;
  result.outcomes.resize(n);

  std::vector<std::thread> workers;
  workers.reserve(n);
  for (sim::NodeId v = 0; v < n; ++v) {
    workers.emplace_back([&ring, &result, &ids, alg, v] {
      BlockingOutcome out;
      std::uint64_t restarts = 0;
      for (;;) {
        // Read the epoch before binding the io handle: if a crash slips in
        // between, the handle is dead and the epoch comparison below still
        // routes us into the recovery path.
        const std::uint64_t epoch = ring.crash_epoch(v);
        NodeIo io = ring.io(v);
        switch (alg) {
          case ThreadAlg::alg1:
            out = run_alg1_blocking(io, ids[v]);
            break;
          case ThreadAlg::alg2:
            out = run_alg2_blocking(io, ids[v]);
            break;
          case ThreadAlg::alg3_doubled:
            out = run_alg3_blocking(io, ids[v], co::IdScheme::doubled);
            break;
          case ThreadAlg::alg3_improved:
            out = run_alg3_blocking(io, ids[v], co::IdScheme::improved);
            break;
        }
        if (ring.crash_epoch(v) == epoch) break;  // normal stop/termination
        // The node crash-stopped mid-run: whatever the dead incarnation
        // computed is gone with it.
        out = BlockingOutcome{};
        out.id = ids[v];
        out.stopped = true;
        if (!ring.await_recovery(v)) break;  // run ended while still down
        ++restarts;  // recovered: re-run the algorithm from scratch
      }
      out.restarts = restarts;
      result.outcomes[v] = out;
      ring.worker_finished();
    });
  }

  std::thread chaos_thread;
  if (chaos) chaos_thread = std::thread([&ring, &chaos] { chaos(ring); });

  result.completed = ring.monitor(timeout_ms);
  if (chaos_thread.joinable()) chaos_thread.join();
  for (auto& w : workers) w.join();

  result.pulses = ring.total_sent();
  result.crashes = ring.crashes();
  result.recoveries = ring.recoveries();
  if (!result.completed) {
    result.stall_dump = ring.dump();  // publishes metrics as a side effect
  } else {
    ring.publish_metrics();
  }
  for (sim::NodeId v = 0; v < n; ++v) {
    if (result.outcomes[v].role == co::Role::leader) {
      ++result.leader_count;
      if (!result.leader) result.leader = v;
    }
  }
  return result;
}

}  // namespace colex::rt
