// Algorithm 2 (paper §3.2, Theorem 1): quiescently *terminating* leader
// election on oriented rings with message complexity exactly n(2*IDmax + 1).
//
// Two instances of Algorithm 1 run in parallel: one over the CW channel
// (started at initialization) and one over the CCW channel (started at a
// node only once rho_cw >= ID, which makes the CCW instance lag behind the
// CW one). The event rho_cw = ID = rho_ccw then occurs uniquely at the node
// with the maximal ID, which reacts by sending one extra CCW pulse — the
// termination pulse. Every node that observes rho_ccw > rho_cw for the first
// time forwards that pulse and terminates; the pulse returns to the leader,
// which terminates last without forwarding it (quiescent termination, and
// termination in an order that makes the algorithm composable, §1.1).
#pragma once

#include <cstdint>
#include <memory>

#include "co/oriented.hpp"
#include "co/roles.hpp"
#include "sim/network.hpp"

namespace colex::co {

class Alg2Terminating final : public sim::PulseAutomaton {
 public:
  explicit Alg2Terminating(std::uint64_t id);

  void start(sim::PulseContext& ctx) override;
  void react(sim::PulseContext& ctx) override;
  bool terminated() const override { return done_; }
  std::unique_ptr<sim::PulseAutomaton> clone() const override {
    return std::make_unique<Alg2Terminating>(*this);
  }
  /// Paper line ranges: probe (3-13 before a role), initiated_wait (the
  /// unique node inside lines 16-17), elected (role fixed, draining toward
  /// the until), done (past line 18).
  const char* phase() const override {
    if (done_) return "done";
    if (awaiting_return_) return "initiated_wait";
    return role_ == Role::undecided ? "probe" : "elected";
  }

  std::uint64_t id() const { return id_; }
  Role role() const { return role_; }
  const PulseCounters& counters() const { return counters_; }
  /// True iff this node fired the unique rho_cw = ID = rho_ccw event and
  /// initiated the termination pulse (must only ever be the leader).
  bool initiated_termination() const { return initiated_termination_; }

  /// Fault-injection only (sim/faults.hpp): overwrites the node's counters
  /// and role as if a transient memory fault hit it. Unlike the stabilizing
  /// algorithms, Algorithm 2 *commits* (it terminates), so a corrupted
  /// counter pair rho_cw = rho_ccw = ID makes a non-maximal node initiate
  /// termination — the fault harness uses this to exhibit a committed
  /// mis-election (safety violation), not just a stall.
  void load_corrupted_state(const PulseCounters& counters, Role role) {
    counters_ = counters;
    role_ = role;
  }

 private:
  /// One iteration of the paper's repeat-until loop (lines 3-18). Returns
  /// true if any progress was made (a pulse consumed or sent, or a state
  /// transition taken).
  bool iterate(sim::PulseContext& ctx);

  std::uint64_t id_;
  Role role_ = Role::undecided;
  PulseCounters counters_;
  bool initiated_termination_ = false;  // entered lines 14-17
  bool awaiting_return_ = false;        // inside the wait loop, lines 16-17
  bool done_ = false;                   // passed the until in line 18
};

}  // namespace colex::co
