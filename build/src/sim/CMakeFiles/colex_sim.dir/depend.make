# Empty dependencies file for colex_sim.
# This may be replaced when dependencies are built.
