// Corollary 5 end-to-end: arbitrary computation over a fully defective
// ring with no pre-existing leader. Algorithm 2 elects a leader with
// quiescent termination; the leader then acts as the root of the
// content-oblivious token bus (the ring-specialized substrate of
// Censor-Hillel et al.'s universal scheme), over which every node
// broadcasts its private input. Every node ends up knowing the ring size,
// every input, and hence max and sum — all of it conveyed purely by pulse
// ORDER, never by message content.
//
//   ./examples/compose_compute [n] [seed]
#include <cstdlib>
#include <iostream>

#include "colib/apps.hpp"
#include "colib/composed.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace colex;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 11;
  if (n == 0) {
    std::cerr << "ring size must be positive\n";
    return 1;
  }

  util::Xoshiro256StarStar rng(seed);
  std::vector<std::uint64_t> ids;
  while (ids.size() < n) {
    const std::uint64_t candidate = rng.in_range(1, 4 * n);
    bool fresh = true;
    for (const auto existing : ids) fresh = fresh && existing != candidate;
    if (fresh) ids.push_back(candidate);
  }
  std::vector<std::uint64_t> inputs(n);
  for (std::size_t v = 0; v < n; ++v) inputs[v] = rng.in_range(1, 1000);

  sim::PulseNetwork net;
  sim::RandomScheduler scheduler(seed);
  const auto result = colib::run_composed_with_network(
      ids,
      [&inputs](sim::NodeId v) {
        return std::make_unique<colib::GatherAllApp>(inputs[v]);
      },
      scheduler, {}, net);

  std::cout << "Corollary 5: election composed with universal "
               "content-oblivious computation\n\n";
  util::Table table({"node", "ID", "input", "offset from root", "knows sum",
                     "knows max"});
  for (std::size_t v = 0; v < n; ++v) {
    const auto& composed = net.automaton_as<colib::ComposedNode>(v);
    const auto& app =
        dynamic_cast<const colib::GatherAllApp&>(composed.bus()->app());
    table.add_row(
        {util::Table::num(static_cast<std::uint64_t>(v)),
         util::Table::num(ids[v]), util::Table::num(inputs[v]),
         util::Table::num(static_cast<std::uint64_t>(app.offset())),
         app.complete() ? util::Table::num(app.sum()) : "-",
         app.complete() ? util::Table::num(app.max_value()) : "-"});
  }
  table.print(std::cout);

  std::cout << "\nleader (bus root)      : node " << *result.leader
            << " (ID " << ids[*result.leader] << ")\n";
  std::cout << "ring size learned      : " << result.ring_size_learned
            << "\n";
  std::cout << "election pulses        : " << result.election_pulses << "\n";
  std::cout << "bus pulses             : " << result.bus_pulses << "\n";
  std::cout << "total pulses           : " << result.total_pulses << "\n";
  std::cout << "quiescent termination  : "
            << (result.all_terminated && result.quiescent ? "yes" : "no")
            << "\n";
  return result.all_terminated ? 0 : 1;
}
